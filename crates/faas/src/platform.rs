//! The FaaS control plane: function registry, container lifecycle,
//! placement/packing, invocation, and billing.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::HashMap;
use std::fmt;
use std::future::Future;
use std::rc::Rc;

use bytes::Bytes;
use faasim_net::{Fabric, Host, HostId, NicStats};
use faasim_payload::Payload;
use faasim_pricing::{ItemId, Ledger, PriceBook, Service};
use faasim_simcore::{
    FxHashMap, LazyCounter, LazyHist, LocalBoxFuture, Recorder, SemPermit, Semaphore, Sim,
    SimDuration, SimRng, SimTime,
};

use crate::config::FaasProfile;

/// Errors surfaced by function invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FnError {
    /// No function registered under this name.
    NotFound(String),
    /// The invocation exceeded its timeout (or the 15-minute platform cap)
    /// and was killed.
    TimedOut {
        /// How long it ran before being killed.
        after: SimDuration,
    },
    /// The handler returned an application error.
    Handler(String),
    /// The container died mid-invocation (chaos-injected platform
    /// failure; see [`FaasPlatform::set_faults`]). The paper's point:
    /// functions must assume they can be killed at any moment.
    Crashed {
        /// How long the handler ran before the container died.
        after: SimDuration,
    },
}

impl FnError {
    /// Whether a retry of the same invocation may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, FnError::Crashed { .. } | FnError::TimedOut { .. })
    }
}

impl fmt::Display for FnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FnError::NotFound(n) => write!(f, "no such function: {n}"),
            FnError::TimedOut { after } => write!(f, "function timed out after {after}"),
            FnError::Handler(e) => write!(f, "handler error: {e}"),
            FnError::Crashed { after } => write!(f, "container crashed after {after}"),
        }
    }
}

impl std::error::Error for FnError {}

/// Handler output.
pub type HandlerResult = Result<Payload, FnError>;

type Handler = Rc<dyn Fn(FnCtx, Payload) -> LocalBoxFuture<'static, HandlerResult>>;

/// A registered function: name, resources, and handler code.
#[derive(Clone)]
pub struct FunctionSpec {
    /// Function name (invocation key).
    pub name: String,
    /// Allocated memory in MB; also determines the CPU share.
    pub memory_mb: u64,
    /// User-configured timeout (clamped to the platform's 15-minute cap).
    pub timeout: SimDuration,
    handler: Handler,
}

impl fmt::Debug for FunctionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionSpec")
            .field("name", &self.name)
            .field("memory_mb", &self.memory_mb)
            .field("timeout", &self.timeout)
            .finish()
    }
}

impl FunctionSpec {
    /// Define a function from an async closure. The handler may return any
    /// body type convertible into [`Payload`] (`Payload`, `Bytes`, `Vec<u8>`,
    /// static slices/strings), so plain byte-producing handlers compile
    /// unchanged while data-plane-aware ones stay symbolic.
    pub fn new<F, Fut, R>(
        name: impl Into<String>,
        memory_mb: u64,
        timeout: SimDuration,
        handler: F,
    ) -> FunctionSpec
    where
        F: Fn(FnCtx, Payload) -> Fut + 'static,
        Fut: Future<Output = Result<R, FnError>> + 'static,
        R: Into<Payload> + 'static,
    {
        FunctionSpec {
            name: name.into(),
            memory_mb,
            timeout,
            handler: Rc::new(move |ctx, payload| {
                let fut = handler(ctx, payload);
                Box::pin(async move { fut.await.map(Into::into) })
            }),
        }
    }
}

/// Per-invocation context handed to handlers.
#[derive(Clone)]
pub struct FnCtx {
    sim: Sim,
    host: Host,
    container_id: u64,
    cache: Rc<RefCell<HashMap<String, Bytes>>>,
    deadline: SimTime,
    cpu_fraction: f64,
    memory_mb: u64,
    cold: bool,
}

impl FnCtx {
    /// The simulation clock.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The container's host — pass this to storage/queue/network calls so
    /// I/O pays this host's (shared!) NIC.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Identifier of the container running this invocation.
    pub fn container_id(&self) -> u64 {
        self.container_id
    }

    /// Whether this invocation cold-started its container.
    pub fn is_cold(&self) -> bool {
        self.cold
    }

    /// Allocated memory.
    pub fn memory_mb(&self) -> u64 {
        self.memory_mb
    }

    /// Time left before the platform kills this invocation.
    pub fn remaining(&self) -> SimDuration {
        self.deadline.duration_since(self.sim.now())
    }

    /// Burn `reference_work` of CPU (time on a dedicated reference core),
    /// scaled by this function's memory-proportional CPU share.
    pub async fn cpu(&self, reference_work: SimDuration) {
        let scaled = reference_work.mul_f64(1.0 / self.cpu_fraction);
        self.sim.sleep(scaled).await;
    }

    /// The container's warm cache: survives across invocations on the
    /// same container, is lost on cold start — exactly the caching
    /// behaviour §3 constraint (1) describes ("no way to ensure that
    /// subsequent invocations are run on the same VM").
    pub fn container_cache(&self) -> Rc<RefCell<HashMap<String, Bytes>>> {
        self.cache.clone()
    }
}

/// What an invocation returned, plus its accounting.
#[derive(Clone, Debug)]
pub struct InvokeOutcome {
    /// Handler result (or platform error).
    pub result: HandlerResult,
    /// Handler execution time (excludes invocation-path overhead).
    pub exec: SimDuration,
    /// Billed duration (rounded up to the billing increment).
    pub billed: SimDuration,
    /// Client-observed latency including the invocation path.
    pub total: SimDuration,
    /// Whether a new container had to be started.
    pub cold: bool,
    /// Host the invocation ran on.
    pub host: HostId,
    /// Container id the invocation ran in.
    pub container: u64,
}

struct Container {
    id: u64,
    func: String,
    host_idx: usize,
    host: Host,
    mem_mb: u64,
    cache: Rc<RefCell<HashMap<String, Bytes>>>,
    busy: bool,
    idle_since: SimTime,
    /// When the container was placed — the start of its residency window
    /// for [`PackingStats`] accounting.
    created: SimTime,
    /// Kept warm by provisioned concurrency: exempt from idle reaping and
    /// billed per GB-second while reserved.
    provisioned: bool,
}

/// Ordering key for the per-function idle-container index: the maximum
/// element is exactly the container the MRU policy prefers — provisioned
/// first, then latest `idle_since`, then lowest id (ties resolve to the
/// earliest-placed container, matching the original linear scan).
type WarmKey = (bool, SimTime, Reverse<u64>);

/// Per-function idle-container index: a `Vec` kept sorted ascending by
/// [`WarmKey`], so the MRU pick ([`WarmSet::pop_max`]) is a pop from the
/// tail. Containers are released at the current instant, which is `>=`
/// every `idle_since` already indexed, so inserts land at (or within a
/// few same-instant or stale-hint entries of) the tail — amortized O(1)
/// where a `BTreeSet` walks ~12 node levels per take/release at replay
/// concurrency. Selection is unchanged: keys are unique (they end in the
/// container id) and `pop_max` yields the same maximum a `BTreeSet`
/// would.
#[derive(Default)]
struct WarmSet(Vec<WarmKey>);

impl WarmSet {
    fn single(key: WarmKey) -> WarmSet {
        WarmSet(vec![key])
    }

    fn insert(&mut self, key: WarmKey) {
        match self.0.last() {
            Some(last) if *last > key => {
                let pos = self.0.partition_point(|k| *k < key);
                self.0.insert(pos, key);
            }
            _ => self.0.push(key),
        }
    }

    fn pop_max(&mut self) -> Option<WarmKey> {
        self.0.pop()
    }
}

/// Container-packing integrals, the raw material for a packing-density
/// metric: `resident_gb_seconds` is how much memory-time the platform has
/// kept containers alive for (warm *and* busy), `busy_gb_seconds` is the
/// share actually spent executing handlers. Their ratio is the density —
/// low density means the keep-alive pool is mostly paying for idle memory.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PackingStats {
    /// GB·seconds of handler execution time.
    pub busy_gb_seconds: f64,
    /// GB·seconds of container residency (from placement to destruction,
    /// live containers counted up to now).
    pub resident_gb_seconds: f64,
}

impl PackingStats {
    /// Fraction of container residency spent executing handlers
    /// (`0.0` when nothing has been resident).
    pub fn density(&self) -> f64 {
        if self.resident_gb_seconds <= 0.0 {
            0.0
        } else {
            self.busy_gb_seconds / self.resident_gb_seconds
        }
    }
}

struct FnHost {
    host: Host,
    containers: usize,
    mem_used_mb: u64,
}

/// Deterministic fault knobs for the FaaS platform. Zero by default; no
/// RNG draws are consumed while every probability is zero, so enabling
/// chaos never perturbs a fault-free run at the same seed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaasFaults {
    /// Probability that an invocation's container is killed partway
    /// through the handler ([`FnError::Crashed`]). The kill instant is
    /// uniform over the invocation's time limit.
    pub kill_prob: f64,
}

struct PlatformState {
    functions: FxHashMap<String, Rc<FunctionSpec>>,
    containers: Vec<Container>,
    hosts: Vec<FnHost>,
    /// Per-function index of idle containers, keyed so the set maximum is
    /// the container `take_warm` must hand out. Entries are *hints*: they
    /// are validated (and lazily corrected or discarded) when popped, so
    /// eviction, reaping, crashes, and provisioned-concurrency changes
    /// never have to maintain the index.
    warm_idle: FxHashMap<String, WarmSet>,
    /// GB·seconds of residency credited for already-destroyed containers.
    retired_gb_s: f64,
    /// GB·seconds spent executing handlers.
    busy_gb_s: f64,
    next_container: u64,
    rng: SimRng,
    /// Active provisioned-concurrency reservations:
    /// func -> (containers reserved, reserved-at, GB reserved).
    provisioned: HashMap<String, (usize, SimTime, f64)>,
    /// Async-invoke on-failure destinations.
    failure_destinations: HashMap<String, (faasim_queue::QueueService, String)>,
    /// Lazily created control-plane host.
    control_host: Option<Host>,
    /// Chaos knobs (all zero by default).
    faults: FaasFaults,
}

/// Pre-resolved recorder/ledger handles for the per-invocation path: at
/// trace scale every string hash or allocation per invoke is real
/// wall-clock. Recorder handles resolve lazily (see [`LazyCounter`] —
/// eager interning would leak zero-valued series into determinism
/// digests); ledger ids are interned eagerly, which is safe because
/// never-charged slots are invisible on the bill.
struct HotIds {
    invoke_cold: LazyCounter,
    invoke_warm: LazyCounter,
    throttled_waits: LazyCounter,
    chaos_kills: LazyCounter,
    invoke_total: LazyHist,
    invoke_exec: LazyHist,
    bill_requests: ItemId,
    bill_gb_seconds: ItemId,
}

/// The FaaS platform handle. Cheap to clone.
#[derive(Clone)]
pub struct FaasPlatform {
    sim: Sim,
    fabric: Fabric,
    profile: Rc<FaasProfile>,
    prices: Rc<PriceBook>,
    ledger: Ledger,
    recorder: Recorder,
    concurrency: Semaphore,
    hot: Rc<HotIds>,
    state: Rc<RefCell<PlatformState>>,
}

impl FaasPlatform {
    /// Create the platform.
    pub fn new(
        sim: &Sim,
        fabric: &Fabric,
        profile: FaasProfile,
        prices: Rc<PriceBook>,
        ledger: Ledger,
        recorder: Recorder,
    ) -> FaasPlatform {
        let hot = Rc::new(HotIds {
            invoke_cold: LazyCounter::new("faas.invoke.cold"),
            invoke_warm: LazyCounter::new("faas.invoke.warm"),
            throttled_waits: LazyCounter::new("faas.throttled_waits"),
            chaos_kills: LazyCounter::new("faas.chaos_kills"),
            invoke_total: LazyHist::new("faas.invoke.total"),
            invoke_exec: LazyHist::new("faas.invoke.exec"),
            bill_requests: ledger.item_id(Service::Faas, "requests"),
            bill_gb_seconds: ledger.item_id(Service::Faas, "gb-seconds"),
        });
        FaasPlatform {
            sim: sim.clone(),
            fabric: fabric.clone(),
            concurrency: Semaphore::new(profile.account_concurrency),
            profile: Rc::new(profile),
            prices,
            ledger,
            recorder,
            hot,
            state: Rc::new(RefCell::new(PlatformState {
                functions: FxHashMap::default(),
                containers: Vec::new(),
                hosts: Vec::new(),
                warm_idle: FxHashMap::default(),
                retired_gb_s: 0.0,
                busy_gb_s: 0.0,
                next_container: 0,
                rng: sim.rng("faas.platform"),
                provisioned: HashMap::new(),
                failure_destinations: HashMap::new(),
                control_host: None,
                faults: FaasFaults::default(),
            })),
        }
    }

    /// The platform profile in force.
    pub fn profile(&self) -> &FaasProfile {
        &self.profile
    }

    /// The simulation this platform runs on.
    pub fn sim_handle(&self) -> Sim {
        self.sim.clone()
    }

    /// Register (or replace) a function.
    ///
    /// # Panics
    /// Panics if the spec exceeds the platform's memory ceiling — a
    /// deployment-time error in the real service too.
    pub fn register(&self, spec: FunctionSpec) {
        assert!(
            spec.memory_mb <= self.profile.max_memory_mb,
            "function {} requests {} MB > platform max {} MB",
            spec.name,
            spec.memory_mb,
            self.profile.max_memory_mb
        );
        assert!(spec.memory_mb > 0, "zero-memory function");
        self.state
            .borrow_mut()
            .functions
            .insert(spec.name.clone(), Rc::new(spec));
    }

    /// Number of live (warm or busy) containers.
    pub fn container_count(&self) -> usize {
        self.state.borrow().containers.len()
    }

    /// Number of function-host VMs currently in use.
    pub fn host_count(&self) -> usize {
        self.state
            .borrow()
            .hosts
            .iter()
            .filter(|h| h.containers > 0)
            .count()
    }

    fn sample(&self, which: Which) -> SimDuration {
        let mut st = self.state.borrow_mut();
        let model = match which {
            Which::Invoke => &self.profile.invoke_overhead,
            Which::Cold => &self.profile.cold_start_extra,
            Which::Trigger => &self.profile.queue_trigger_overhead,
        };
        model.sample(&mut st.rng)
    }

    /// Install chaos knobs; pass `FaasFaults::default()` to disable.
    pub fn set_faults(&self, faults: FaasFaults) {
        self.state.borrow_mut().faults = faults;
    }

    /// Chaos cold-start storm: evict every idle container (provisioned
    /// ones included — the storm models correlated platform churn), so
    /// the next wave of invocations all pay cold starts. Busy containers
    /// are untouched; in-flight kills are [`FaasFaults::kill_prob`]'s
    /// job. Returns the number of containers evicted.
    pub fn evict_warm(&self) -> usize {
        let now = self.sim.now();
        let mut st = self.state.borrow_mut();
        let mut removed: Vec<(usize, u64)> = Vec::new();
        let mut retired = 0.0;
        st.containers.retain(|c| {
            if c.busy {
                return true;
            }
            removed.push((c.host_idx, c.mem_mb));
            retired += residency_gb_s(c, now);
            false
        });
        st.retired_gb_s += retired;
        for &(host_idx, mem_mb) in &removed {
            if let Some(h) = st.hosts.get_mut(host_idx) {
                h.containers = h.containers.saturating_sub(1);
                h.mem_used_mb = h.mem_used_mb.saturating_sub(mem_mb);
            }
        }
        drop(st);
        let n = removed.len();
        self.recorder.add("faas.chaos_evicted", n as u64);
        n
    }

    /// Reclaim containers idle longer than the keep-alive window.
    pub fn reap_idle(&self) {
        let now = self.sim.now();
        let timeout = self.profile.container_idle_timeout;
        let mut st = self.state.borrow_mut();
        let mut removed: Vec<(usize, u64)> = Vec::new();
        let mut retired = 0.0;
        st.containers.retain(|c| {
            let keep =
                c.provisioned || c.busy || now.duration_since(c.idle_since) < timeout;
            if !keep {
                removed.push((c.host_idx, c.mem_mb));
                retired += residency_gb_s(c, now);
            }
            keep
        });
        st.retired_gb_s += retired;
        for (host_idx, mem_mb) in removed {
            if let Some(h) = st.hosts.get_mut(host_idx) {
                h.containers = h.containers.saturating_sub(1);
                h.mem_used_mb = h.mem_used_mb.saturating_sub(mem_mb);
            }
        }
    }

    /// Take an idle warm container for `func`, if any (provisioned first,
    /// then most recently used, matching observed Lambda behaviour).
    ///
    /// Selection is O(log n) via the per-function [`WarmKey`] index rather
    /// than a scan over every container — the difference between a toy run
    /// and streaming a million-invocation trace over 10k+ functions.
    /// Popped entries are validated against the container table: dangling
    /// entries (evicted/reaped/crashed containers) are discarded, stale
    /// keys (provisioned-concurrency changes) are corrected and re-queued,
    /// and expired keep-alives are dropped for `reap_idle` to collect.
    fn take_warm(&self, func: &str) -> Option<usize> {
        let now = self.sim.now();
        let timeout = self.profile.container_idle_timeout;
        let mut st = self.state.borrow_mut();
        let st = &mut *st;
        let set = st.warm_idle.get_mut(func)?;
        loop {
            let (provisioned, idle_since, Reverse(id)) = set.pop_max()?;
            // The container table stays sorted by id: ids are allocated
            // monotonically and removals preserve order.
            let Ok(pos) = st.containers.binary_search_by_key(&id, |c| c.id) else {
                continue; // container destroyed since the entry was made
            };
            let c = &mut st.containers[pos];
            if c.busy {
                continue;
            }
            if c.provisioned != provisioned || c.idle_since != idle_since {
                // Stale hint (e.g. demoted or re-promoted reservation):
                // re-queue under its true key and look again.
                set.insert((c.provisioned, c.idle_since, Reverse(id)));
                continue;
            }
            if !c.provisioned && now.duration_since(c.idle_since) >= timeout {
                continue; // past keep-alive: never hand out, reap later
            }
            c.busy = true;
            return Some(pos);
        }
    }

    /// Snapshot the busy-vs-resident GB·second integrals (see
    /// [`PackingStats`]); live containers are counted up to now.
    pub fn packing_stats(&self) -> PackingStats {
        let now = self.sim.now();
        let st = self.state.borrow();
        let live: f64 = st.containers.iter().map(|c| residency_gb_s(c, now)).sum();
        PackingStats {
            busy_gb_seconds: st.busy_gb_s,
            resident_gb_seconds: st.retired_gb_s + live,
        }
    }

    /// Aggregate NIC fan-in statistics across every function host (see
    /// [`NicStats`]): `peak_flows` is the worst concurrent fan-in any one
    /// NIC saw, `min_fair_share` the lowest per-flow bandwidth estimate at
    /// any transfer start — the §3(2) bandwidth collapse, measured.
    pub fn nic_stats(&self) -> NicStats {
        let st = self.state.borrow();
        let mut agg = NicStats::default();
        for h in &st.hosts {
            let s = h.host.nic_stats();
            agg.transfers += s.transfers;
            agg.concurrency_sum += s.concurrency_sum;
            agg.peak_flows = agg.peak_flows.max(s.peak_flows);
            agg.min_fair_share = agg.min_fair_share.min(s.min_fair_share);
        }
        agg
    }

    /// Place a new container for `func`, packing onto existing hosts
    /// fill-first (the behaviour behind §3(2)'s bandwidth collapse).
    fn place_cold(&self, func: &str, memory_mb: u64) -> usize {
        self.place_container(func, memory_mb, false)
    }

    fn place_container(&self, func: &str, memory_mb: u64, provisioned: bool) -> usize {
        let mut st = self.state.borrow_mut();
        let host_idx = st
            .hosts
            .iter()
            .position(|h| {
                h.containers < self.profile.max_containers_per_host
                    && h.mem_used_mb + memory_mb <= self.profile.host_mem_mb
            })
            .unwrap_or_else(|| {
                let host = self.fabric.add_host(0, self.profile.host_nic);
                st.hosts.push(FnHost {
                    host,
                    containers: 0,
                    mem_used_mb: 0,
                });
                st.hosts.len() - 1
            });
        st.hosts[host_idx].containers += 1;
        st.hosts[host_idx].mem_used_mb += memory_mb;
        let id = st.next_container;
        st.next_container += 1;
        let host = st.hosts[host_idx].host.clone();
        let now = self.sim.now();
        st.containers.push(Container {
            id,
            func: func.to_owned(),
            host_idx,
            host,
            mem_mb: memory_mb,
            cache: Rc::new(RefCell::new(HashMap::new())),
            busy: !provisioned,
            idle_since: now,
            created: now,
            provisioned,
        });
        if provisioned {
            // Provisioned containers are born idle: index them so
            // `take_warm` can find them.
            st.warm_idle
                .entry(func.to_owned())
                .or_default()
                .insert((true, now, Reverse(id)));
        }
        st.containers.len() - 1
    }

    /// Reserve `n` always-warm containers for `func` — the paper's §4
    /// "service-level objectives" knob, as AWS later shipped it
    /// (provisioned concurrency). Containers start asynchronously (the
    /// one-time start is the platform's problem, not an invocation's) and
    /// are billed per GB-second until released.
    ///
    /// # Panics
    /// Panics if the function is not registered.
    pub fn set_provisioned_concurrency(&self, func: &str, n: usize) {
        let spec = self
            .state
            .borrow()
            .functions
            .get(func)
            .cloned()
            .unwrap_or_else(|| panic!("no such function: {func}"));
        self.release_provisioned_concurrency(func);
        for _ in 0..n {
            self.place_container(func, spec.memory_mb, true);
        }
        let gb = n as f64 * spec.memory_mb as f64 / 1024.0;
        self.state
            .borrow_mut()
            .provisioned
            .insert(func.to_owned(), (n, self.sim.now(), gb));
        self.recorder.add("faas.provisioned_containers", n as u64);
    }

    /// Release a provisioned-concurrency reservation, charging for the
    /// reserved GB-seconds. Containers stay warm only for the ordinary
    /// keep-alive window afterwards. No-op when nothing is reserved.
    pub fn release_provisioned_concurrency(&self, func: &str) {
        let reservation = self.state.borrow_mut().provisioned.remove(func);
        let Some((_, since, gb)) = reservation else {
            return;
        };
        let gb_s = gb * self.sim.now().duration_since(since).as_secs_f64();
        self.ledger.charge(
            Service::Faas,
            "provisioned-gb-seconds",
            gb_s,
            gb_s * self.prices.lambda_provisioned_per_gb_second,
        );
        let now = self.sim.now();
        let mut st = self.state.borrow_mut();
        for c in st.containers.iter_mut() {
            if c.func == func && c.provisioned {
                c.provisioned = false;
                if !c.busy {
                    c.idle_since = now;
                }
            }
        }
    }

    /// Charge all outstanding provisioned reservations up to now (call at
    /// the end of an experiment so the bill is complete).
    pub fn finalize_provisioned_billing(&self) {
        let funcs: Vec<String> = self.state.borrow().provisioned.keys().cloned().collect();
        for func in funcs {
            // Charge and immediately re-reserve so behaviour is unchanged.
            let (n, _, _) = self.state.borrow().provisioned[&func];
            self.release_provisioned_concurrency(&func);
            // Re-mark the same containers as provisioned without paying a
            // new start.
            let mut st = self.state.borrow_mut();
            let mut count = 0usize;
            for c in st.containers.iter_mut() {
                if c.func == func && count < n {
                    c.provisioned = true;
                    count += 1;
                }
            }
            let gb = st
                .functions
                .get(&func)
                .map(|s| n as f64 * s.memory_mb as f64 / 1024.0)
                .unwrap_or(0.0);
            st.provisioned
                .insert(func.clone(), (n, self.sim.now(), gb));
        }
    }

    /// Invoke `func` synchronously and await its outcome.
    pub async fn invoke(&self, func: &str, payload: impl Into<Payload>) -> InvokeOutcome {
        self.invoke_inner(func, payload.into(), false).await
    }

    /// Invoke via the queue-trigger path (adds the event-source dispatch
    /// overhead). Used by [`crate::trigger`].
    pub async fn invoke_triggered(&self, func: &str, payload: impl Into<Payload>) -> InvokeOutcome {
        self.invoke_inner(func, payload.into(), true).await
    }

    /// Asynchronous invocation with Lambda's event-invoke semantics: the
    /// call returns immediately; the platform runs the function in the
    /// background, retrying failed executions up to `async_retries` times
    /// with backoff, then (if configured) delivering the original payload
    /// to the function's on-failure queue.
    pub fn invoke_async(&self, func: &str, payload: impl Into<Payload>) {
        let this = self.clone();
        let func = func.to_owned();
        let payload: Payload = payload.into();
        self.sim.clone().spawn(async move {
            let (retries, backoff) = (
                this.profile.async_retries,
                this.profile.async_retry_backoff,
            );
            let mut attempt = 0u32;
            loop {
                let out = this.invoke(&func, payload.clone()).await;
                match out.result {
                    Ok(_) => return,
                    Err(FnError::NotFound(_)) => break, // retrying won't help
                    Err(_) if attempt < retries => {
                        attempt += 1;
                        this.recorder.incr("faas.async_retries");
                        this.sim.sleep(backoff * attempt as u64).await;
                    }
                    Err(_) => break,
                }
            }
            this.recorder.incr("faas.async_failures");
            let dest = this
                .state
                .borrow()
                .failure_destinations
                .get(&func)
                .cloned();
            if let Some((queue_service, queue)) = dest {
                let host = this.poller_host();
                let _ = queue_service.send(&host, &queue, payload).await;
            }
        });
    }

    /// Route an async-invoked function's exhausted failures to a queue
    /// (Lambda's "on-failure destination" / DLQ).
    pub fn set_async_failure_destination(
        &self,
        func: &str,
        queues: &faasim_queue::QueueService,
        queue: &str,
    ) {
        self.state
            .borrow_mut()
            .failure_destinations
            .insert(func.to_owned(), (queues.clone(), queue.to_owned()));
    }

    /// A platform-internal host for control-plane traffic (failure
    /// destinations, etc.), created lazily.
    fn poller_host(&self) -> Host {
        let existing = self.state.borrow().control_host.clone();
        match existing {
            Some(h) => h,
            None => {
                let h = self
                    .fabric
                    .add_host(0, faasim_net::NicConfig::simple(faasim_simcore::mbps(10_000.0)));
                self.state.borrow_mut().control_host = Some(h.clone());
                h
            }
        }
    }

    async fn invoke_inner(&self, func: &str, payload: Payload, triggered: bool) -> InvokeOutcome {
        let t0 = self.sim.now();
        let spec = match self.state.borrow().functions.get(func) {
            Some(s) => s.clone(),
            None => {
                return InvokeOutcome {
                    result: Err(FnError::NotFound(func.to_owned())),
                    exec: SimDuration::ZERO,
                    billed: SimDuration::ZERO,
                    total: SimDuration::ZERO,
                    cold: false,
                    host: HostId(u64::MAX),
                    container: u64::MAX,
                }
            }
        };

        // Account-level concurrency gate.
        let had_to_wait = self.concurrency.available() == 0;
        let _permit: SemPermit = self.concurrency.acquire(1).await;
        if had_to_wait {
            self.hot.throttled_waits.incr(&self.recorder);
        }

        // Invocation-path overhead.
        if triggered {
            let d = self.sample(Which::Trigger);
            self.sim.sleep(d).await;
        }
        let overhead = self.sample(Which::Invoke);
        self.sim.sleep(overhead).await;

        // Container acquisition.
        let (idx, cold) = match self.take_warm(func) {
            Some(idx) => (idx, false),
            None => {
                let cold_extra = self.sample(Which::Cold);
                self.sim.sleep(cold_extra).await;
                (self.place_cold(func, spec.memory_mb), true)
            }
        };
        let (container_id, host, cache) = {
            let st = self.state.borrow();
            let c = &st.containers[idx];
            (c.id, c.host.clone(), c.cache.clone())
        };
        if cold {
            self.hot.invoke_cold.incr(&self.recorder);
        } else {
            self.hot.invoke_warm.incr(&self.recorder);
        }

        // Run the handler under the lifetime cap.
        let exec_start = self.sim.now();
        let limit = spec.timeout.min(self.profile.max_lifetime);
        let deadline = exec_start + limit;
        let ctx = FnCtx {
            sim: self.sim.clone(),
            host: host.clone(),
            container_id,
            cache,
            deadline,
            cpu_fraction: self.profile.cpu_fraction(spec.memory_mb),
            memory_mb: spec.memory_mb,
            cold,
        };
        // Chaos: decide up front whether (and when) this invocation's
        // container dies mid-flight. The kill instant is uniform over the
        // time limit, so long handlers are proportionally more exposed —
        // the paper's 15-minute-lifetime hazard in miniature.
        let kill_after = {
            let mut st = self.state.borrow_mut();
            let p = st.faults.kill_prob;
            if p > 0.0 && st.rng.chance(p) {
                Some(SimDuration::from_secs_f64(
                    limit.as_secs_f64() * st.rng.unit_f64(),
                ))
            } else {
                None
            }
        };
        let effective_limit = kill_after.map(|k| k.min(limit)).unwrap_or(limit);
        let fut = (spec.handler)(ctx, payload);
        let crashed;
        let result = match self.sim.timeout(effective_limit, fut).await {
            Some(r) => {
                crashed = false;
                r
            }
            None if kill_after.is_some() => {
                crashed = true;
                self.hot.chaos_kills.incr(&self.recorder);
                Err(FnError::Crashed {
                    after: effective_limit,
                })
            }
            None => {
                crashed = false;
                Err(FnError::TimedOut { after: limit })
            }
        };
        let exec = self.sim.now() - exec_start;

        // Release the container (look it up by id: the vector may have
        // shifted while we ran). A crashed container is destroyed instead
        // of returning to the warm pool.
        {
            let now = self.sim.now();
            let mut st = self.state.borrow_mut();
            let st = &mut *st;
            st.busy_gb_s += spec.memory_mb as f64 / 1024.0 * exec.as_secs_f64();
            if crashed {
                if let Ok(pos) = st.containers.binary_search_by_key(&container_id, |c| c.id) {
                    let c = st.containers.remove(pos);
                    st.retired_gb_s += residency_gb_s(&c, now);
                    if let Some(h) = st.hosts.get_mut(c.host_idx) {
                        h.containers = h.containers.saturating_sub(1);
                        h.mem_used_mb = h.mem_used_mb.saturating_sub(c.mem_mb);
                    }
                }
            } else if let Ok(pos) = st.containers.binary_search_by_key(&container_id, |c| c.id) {
                let c = &mut st.containers[pos];
                c.busy = false;
                c.idle_since = now;
                let key = (c.provisioned, now, Reverse(c.id));
                // get_mut-first: the per-invoke release must not pay a
                // `String` allocation just to probe an existing entry.
                match st.warm_idle.get_mut(func) {
                    Some(set) => {
                        set.insert(key);
                    }
                    None => {
                        st.warm_idle.insert(func.to_owned(), WarmSet::single(key));
                    }
                }
            }
        }

        // Billing: per-request + GB-seconds rounded up to the increment.
        let inc = self.profile.billing_increment.as_nanos().max(1);
        let billed_ns = exec.as_nanos().div_ceil(inc) * inc;
        let billed = SimDuration::from_nanos(billed_ns.max(inc));
        let gb = spec.memory_mb as f64 / 1024.0;
        let gb_s = gb * billed.as_secs_f64();
        self.ledger
            .charge_id(self.hot.bill_requests, 1.0, self.prices.lambda_per_request);
        self.ledger.charge_id(
            self.hot.bill_gb_seconds,
            gb_s,
            gb_s * self.prices.lambda_per_gb_second,
        );
        let total = self.sim.now() - t0;
        self.hot.invoke_total.record_duration(&self.recorder, total);
        self.hot.invoke_exec.record_duration(&self.recorder, exec);
        InvokeOutcome {
            result,
            exec,
            billed,
            total,
            cold,
            host: host.id(),
            container: container_id,
        }
    }
}

enum Which {
    Invoke,
    Cold,
    Trigger,
}

/// GB·seconds a container has been resident, from placement to `now`.
fn residency_gb_s(c: &Container, now: SimTime) -> f64 {
    c.mem_mb as f64 / 1024.0 * now.duration_since(c.created).as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasim_net::NetProfile;
    use faasim_simcore::join_all;

    fn setup() -> (Sim, FaasPlatform, Ledger, Recorder) {
        let sim = Sim::new(51);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let ledger = Ledger::new();
        let platform = FaasPlatform::new(
            &sim,
            &fabric,
            crate::config::FaasProfile::aws_2018().exact(),
            Rc::new(PriceBook::aws_2018()),
            ledger.clone(),
            recorder.clone(),
        );
        (sim, platform, ledger, recorder)
    }

    fn noop_spec(name: &str) -> FunctionSpec {
        FunctionSpec::new(
            name,
            128,
            SimDuration::from_secs(60),
            |_ctx, payload| async move { Ok(payload) },
        )
    }

    #[test]
    fn warm_noop_invocation_matches_table1() {
        // Table 1: a no-op invocation on a 1 KB argument = 303 ms.
        let (sim, platform, _, _) = setup();
        platform.register(noop_spec("noop"));
        let p = platform.clone();
        let (first, second) = sim.block_on(async move {
            let a = p.invoke("noop", Bytes::from(vec![0u8; 1024])).await;
            let b = p.invoke("noop", Bytes::from(vec![0u8; 1024])).await;
            (a, b)
        });
        assert!(first.cold);
        assert!(!second.cold);
        let warm_ms = second.total.as_secs_f64() * 1e3;
        assert!((warm_ms - 302.0).abs() < 3.0, "warm invoke {warm_ms} ms");
        // Cold adds the 5 s sandbox start.
        let cold_ms = first.total.as_secs_f64() * 1e3;
        assert!((cold_ms - 5302.0).abs() < 10.0, "cold invoke {cold_ms} ms");
    }

    #[test]
    fn unknown_function_errors() {
        let (sim, platform, _, _) = setup();
        let p = platform.clone();
        let out = sim.block_on(async move { p.invoke("ghost", Bytes::new()).await });
        assert!(matches!(out.result, Err(FnError::NotFound(_))));
    }

    #[test]
    fn lifetime_cap_kills_long_invocations() {
        // §3 constraint (1): killed after 15 minutes even if the user asks
        // for more.
        let (sim, platform, _, _) = setup();
        platform.register(FunctionSpec::new(
            "long",
            1024,
            SimDuration::from_hours(5), // user asks for 5 h; platform caps
            |ctx, _| async move {
                ctx.sim().sleep(SimDuration::from_hours(1)).await;
                Ok(Bytes::new())
            },
        ));
        let p = platform.clone();
        let out = sim.block_on(async move { p.invoke("long", Bytes::new()).await });
        match out.result {
            Err(FnError::TimedOut { after }) => {
                assert_eq!(after, SimDuration::from_secs(900));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(out.billed, SimDuration::from_secs(900));
    }

    #[test]
    fn container_cache_survives_warm_but_not_cold() {
        let (sim, platform, _, _) = setup();
        platform.register(FunctionSpec::new(
            "stateful",
            512,
            SimDuration::from_secs(30),
            |ctx, _| async move {
                let cache = ctx.container_cache();
                let mut cache = cache.borrow_mut();
                let hits = cache
                    .get("count")
                    .map(|b| b[0])
                    .unwrap_or(0);
                cache.insert("count".into(), Bytes::from(vec![hits + 1]));
                Ok(Bytes::from(vec![hits + 1]))
            },
        ));
        let p = platform.clone();
        let counts = sim.block_on(async move {
            let mut counts = Vec::new();
            for _ in 0..3 {
                let out = p.invoke("stateful", Bytes::new()).await;
                counts.push(out.result.unwrap().bytes()[0]);
            }
            counts
        });
        // Same warm container: the counter accumulates.
        assert_eq!(counts, vec![1, 2, 3]);
    }

    #[test]
    fn cpu_scales_with_memory() {
        // CS-1 calibration: 0.2 reference-core-seconds at 640 MB ≈ 0.59 s.
        let (sim, platform, _, _) = setup();
        platform.register(FunctionSpec::new(
            "train-iter",
            640,
            SimDuration::from_secs(900),
            |ctx, _| async move {
                ctx.cpu(SimDuration::from_millis(200)).await;
                Ok(Bytes::new())
            },
        ));
        let p = platform.clone();
        let out = sim.block_on(async move {
            let _warm = p.invoke("train-iter", Bytes::new()).await;
            p.invoke("train-iter", Bytes::new()).await
        });
        let exec_s = out.exec.as_secs_f64();
        assert!((exec_s - 0.59).abs() < 0.01, "exec {exec_s}");
    }

    #[test]
    fn packing_shares_host_nic() {
        // §3(2): twenty concurrent functions land on one host VM and share
        // its NIC: per-function bandwidth collapses to ~28.7 Mbps.
        let (sim, platform, _, _) = setup();
        platform.register(FunctionSpec::new(
            "download",
            640,
            SimDuration::from_secs(900),
            |ctx, _| async move {
                let t0 = ctx.sim().now();
                // 35.875 Mbit so that at 28.7 Mbps it takes 1.25 s.
                ctx.host().nic_transfer(4_484_375).await;
                let took = ctx.sim().now() - t0;
                Ok(Bytes::from(
                    took.as_nanos().to_le_bytes().to_vec(),
                ))
            },
        ));
        let p = platform.clone();
        let outs = sim.block_on(async move {
            let futs: Vec<_> = (0..20)
                .map(|_| {
                    let p = p.clone();
                    async move { p.invoke("download", Bytes::new()).await }
                })
                .collect();
            join_all(futs).await
        });
        assert_eq!(platform.host_count(), 1, "all containers on one host");
        for out in &outs {
            let ns = u64::from_le_bytes(
                out.result.as_ref().unwrap().bytes()[..8].try_into().unwrap(),
            );
            let secs = ns as f64 / 1e9;
            assert!((secs - 1.25).abs() < 0.05, "transfer took {secs}");
        }
    }

    #[test]
    fn twenty_first_container_spills_to_new_host() {
        let (sim, platform, _, _) = setup();
        platform.register(FunctionSpec::new(
            "hold",
            128,
            SimDuration::from_secs(900),
            |ctx, _| async move {
                ctx.sim().sleep(SimDuration::from_secs(10)).await;
                Ok(Bytes::new())
            },
        ));
        let p = platform.clone();
        sim.block_on(async move {
            let futs: Vec<_> = (0..21)
                .map(|_| {
                    let p = p.clone();
                    async move { p.invoke("hold", Bytes::new()).await }
                })
                .collect();
            join_all(futs).await
        });
        assert_eq!(platform.host_count(), 2);
    }

    #[test]
    fn billing_rounds_up_to_100ms() {
        let (sim, platform, ledger, _) = setup();
        platform.register(FunctionSpec::new(
            "quick",
            1024, // 1 GB: makes GB-s arithmetic exact
            SimDuration::from_secs(60),
            |ctx, _| async move {
                ctx.sim().sleep(SimDuration::from_millis(130)).await;
                Ok(Bytes::new())
            },
        ));
        let p = platform.clone();
        let out = sim.block_on(async move { p.invoke("quick", Bytes::new()).await });
        assert_eq!(out.billed, SimDuration::from_millis(200));
        let gb_s = ledger.item_quantity(Service::Faas, "gb-seconds");
        assert!((gb_s - 0.2).abs() < 1e-9, "gb-s {gb_s}");
        assert_eq!(ledger.item_quantity(Service::Faas, "requests"), 1.0);
    }

    #[test]
    fn concurrency_limit_queues_excess() {
        let sim = Sim::new(52);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let mut profile = crate::config::FaasProfile::aws_2018().exact();
        profile.account_concurrency = 2;
        let platform = FaasPlatform::new(
            &sim,
            &fabric,
            profile,
            Rc::new(PriceBook::aws_2018()),
            Ledger::new(),
            recorder.clone(),
        );
        platform.register(FunctionSpec::new(
            "slow",
            128,
            SimDuration::from_secs(60),
            |ctx, _| async move {
                ctx.sim().sleep(SimDuration::from_secs(10)).await;
                Ok(Bytes::new())
            },
        ));
        let p = platform.clone();
        sim.block_on(async move {
            let futs: Vec<_> = (0..4)
                .map(|_| {
                    let p = p.clone();
                    async move { p.invoke("slow", Bytes::new()).await }
                })
                .collect();
            join_all(futs).await
        });
        // 4 invocations, 2 at a time, ~10 s each (plus overheads) => >20 s.
        assert!(sim.now().as_secs_f64() >= 20.0);
        assert!(recorder.counter("faas.throttled_waits") >= 1);
    }

    #[test]
    fn reap_idle_removes_expired_containers() {
        let (sim, platform, _, _) = setup();
        platform.register(noop_spec("noop"));
        let p = platform.clone();
        let s = sim.clone();
        sim.block_on(async move {
            p.invoke("noop", Bytes::new()).await;
            assert_eq!(p.container_count(), 1);
            // Within keep-alive: still warm.
            s.sleep(SimDuration::from_mins(5)).await;
            p.reap_idle();
            assert_eq!(p.container_count(), 1);
            // Past keep-alive: reclaimed.
            s.sleep(SimDuration::from_mins(6)).await;
            p.reap_idle();
            assert_eq!(p.container_count(), 0);
        });
    }

    #[test]
    fn reap_and_evict_mid_flight_never_strand_busy_containers() {
        // A 12-minute invocation outlives the 10-minute keep-alive while a
        // janitor storm reaps and evicts every 30 s. The busy container
        // must survive every pass, release back to warm, and serve the
        // next request without a second cold start; once it later expires
        // or is evicted, its stale warm-index entry must be skipped, not
        // served.
        let (sim, platform, _, recorder) = setup();
        platform.register(FunctionSpec::new(
            "slow",
            128,
            SimDuration::from_secs(900),
            |ctx, _| async move {
                ctx.sim().sleep(SimDuration::from_mins(12)).await;
                Ok(Bytes::new())
            },
        ));
        let (p2, s2) = (platform.clone(), sim.clone());
        sim.spawn(async move {
            for _ in 0..26 {
                s2.sleep(SimDuration::from_secs(30)).await;
                p2.reap_idle();
                p2.evict_warm();
                assert!(p2.container_count() <= 1, "container invented mid-storm");
            }
        });
        let p = platform.clone();
        let (first, second) = sim.block_on(async move {
            let a = p.invoke("slow", Bytes::new()).await;
            // Released this instant: must be reused warm despite the storm.
            let b = p.invoke("slow", Bytes::new()).await;
            (a, b)
        });
        assert!(first.result.is_ok(), "storm killed a busy container");
        assert!(second.result.is_ok());
        assert!(first.cold);
        assert!(!second.cold, "warm release was stranded by the janitor");
        assert_eq!(recorder.counter("faas.invoke.cold"), 1);

        // Expire the container for real; the dangling warm-index entry
        // must be dropped and the next invoke must cold-start cleanly.
        let (p, s) = (platform.clone(), sim.clone());
        let third = sim.block_on(async move {
            s.sleep(SimDuration::from_mins(11)).await;
            p.reap_idle();
            assert_eq!(p.container_count(), 0);
            p.invoke("slow", Bytes::new()).await
        });
        assert!(third.cold);
        assert_eq!(recorder.counter("faas.invoke.cold"), 2);

        // Same for a chaos eviction: stale entry, clean cold start.
        let p = platform.clone();
        let fourth = sim.block_on(async move {
            assert_eq!(p.evict_warm(), 1);
            p.invoke("slow", Bytes::new()).await
        });
        assert!(fourth.cold);
        assert_eq!(recorder.counter("faas.invoke.cold"), 3);
    }

    #[test]
    fn expired_container_cold_starts_again() {
        let (sim, platform, _, _) = setup();
        platform.register(noop_spec("noop"));
        let p = platform.clone();
        let s = sim.clone();
        let (a, b, c) = sim.block_on(async move {
            let a = p.invoke("noop", Bytes::new()).await;
            let b = p.invoke("noop", Bytes::new()).await;
            s.sleep(SimDuration::from_mins(11)).await;
            let c = p.invoke("noop", Bytes::new()).await;
            (a, b, c)
        });
        assert!(a.cold);
        assert!(!b.cold);
        assert!(c.cold, "expired container must not serve warm starts");
    }

    #[test]
    fn provisioned_concurrency_eliminates_cold_starts() {
        let (sim, platform, ledger, _) = setup();
        platform.register(noop_spec("noop"));
        platform.set_provisioned_concurrency("noop", 2);
        let p = platform.clone();
        let s = sim.clone();
        let outcomes = sim.block_on(async move {
            let mut outs = Vec::new();
            for _ in 0..3 {
                // Arrivals far sparser than the keep-alive window...
                s.sleep(SimDuration::from_mins(30)).await;
                p.reap_idle();
                outs.push(p.invoke("noop", Bytes::new()).await);
            }
            outs
        });
        // ...yet no invocation cold-starts: the reserved containers held.
        for out in &outcomes {
            assert!(!out.cold, "provisioned invocation cold-started");
        }
        platform.release_provisioned_concurrency("noop");
        // 2 x 128 MB reserved for 90 min => 1350 GB-s at the launch rate.
        let gb_s = ledger.item_quantity(Service::Faas, "provisioned-gb-seconds");
        assert!((gb_s - 1350.0).abs() < 2.0, "gb-s {gb_s}");
        // Released containers now age out normally.
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(SimDuration::from_mins(30)).await;
        });
        platform.reap_idle();
        assert_eq!(platform.container_count(), 0);
    }

    #[test]
    fn provisioned_billing_is_time_proportional() {
        let (sim, platform, ledger, _) = setup();
        platform.register(FunctionSpec::new(
            "big",
            1024,
            SimDuration::from_secs(30),
            |_ctx, p| async move { Ok(p) },
        ));
        platform.set_provisioned_concurrency("big", 4);
        let s = sim.clone();
        sim.block_on(async move { s.sleep(SimDuration::from_hours(1)).await });
        platform.finalize_provisioned_billing();
        // 4 GB reserved for one hour = 14,400 GB-s at $0.000004167.
        let dollars = ledger.item_dollars(Service::Faas, "provisioned-gb-seconds");
        assert!((dollars - 14_400.0 * 0.000_004_167).abs() < 1e-6, "{dollars}");
        // Finalize re-arms the reservation: invocations stay warm.
        let p = platform.clone();
        let out = sim.block_on(async move { p.invoke("big", Bytes::new()).await });
        assert!(!out.cold);
    }

    #[test]
    fn async_invoke_retries_then_succeeds() {
        let sim = Sim::new(53);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let mut profile = crate::config::FaasProfile::aws_2018().exact();
        profile.async_retry_backoff = SimDuration::from_secs(1);
        let platform = FaasPlatform::new(
            &sim,
            &fabric,
            profile,
            Rc::new(PriceBook::aws_2018()),
            Ledger::new(),
            recorder.clone(),
        );
        let tries = Rc::new(std::cell::Cell::new(0u32));
        let t = tries.clone();
        platform.register(FunctionSpec::new(
            "flaky",
            128,
            SimDuration::from_secs(30),
            move |_ctx, p| {
                let t = t.clone();
                async move {
                    t.set(t.get() + 1);
                    if t.get() < 3 {
                        Err(FnError::Handler("transient".into()))
                    } else {
                        Ok(p)
                    }
                }
            },
        ));
        platform.invoke_async("flaky", Bytes::new());
        sim.run();
        assert_eq!(tries.get(), 3, "two retries then success");
        assert_eq!(recorder.counter("faas.async_retries"), 2);
        assert_eq!(recorder.counter("faas.async_failures"), 0);
    }

    #[test]
    fn async_invoke_exhausted_failures_reach_destination_queue() {
        let sim = Sim::new(54);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let mut profile = crate::config::FaasProfile::aws_2018().exact();
        profile.async_retry_backoff = SimDuration::from_secs(1);
        let prices = Rc::new(PriceBook::aws_2018());
        let ledger = Ledger::new();
        let platform = FaasPlatform::new(
            &sim,
            &fabric,
            profile,
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        let queues = faasim_queue::QueueService::new(
            &sim,
            faasim_queue::QueueProfile::aws_2018().exact(),
            prices,
            ledger,
            recorder.clone(),
        );
        queues.create_queue("failed-events", faasim_queue::QueueConfig::default());
        platform.register(FunctionSpec::new(
            "doomed",
            128,
            SimDuration::from_secs(30),
            |_ctx, _| async move { Err::<Payload, _>(FnError::Handler("permanent".into())) },
        ));
        platform.set_async_failure_destination("doomed", &queues, "failed-events");
        platform.invoke_async("doomed", Bytes::from_static(b"event-1"));
        sim.run();
        // 1 initial + 2 retries, all failed, original payload preserved.
        assert_eq!(recorder.counter("faas.async_retries"), 2);
        assert_eq!(recorder.counter("faas.async_failures"), 1);
        assert_eq!(queues.queue_len("failed-events"), 1);
    }

    #[test]
    #[should_panic(expected = "no such function")]
    fn provisioning_unknown_function_panics() {
        let (_sim, platform, _, _) = setup();
        platform.set_provisioned_concurrency("ghost", 1);
    }

    #[test]
    #[should_panic(expected = "platform max")]
    fn oversized_function_rejected() {
        let (_sim, platform, _, _) = setup();
        platform.register(FunctionSpec::new(
            "huge",
            4096,
            SimDuration::from_secs(60),
            |_ctx, p| async move { Ok(p) },
        ));
    }
}
