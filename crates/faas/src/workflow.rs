//! A Step-Functions-style workflow orchestrator over the FaaS platform —
//! the managed version of §2's *function composition* pattern, so
//! applications don't hand-roll the queue-stitching the paper's Autodesk
//! case study describes.
//!
//! A workflow is a small expression tree: sequences, parallel fan-outs
//! (payload broadcast, outputs re-joined as an encoded batch), and
//! per-step retries. The orchestrator itself is a managed control plane:
//! each state transition pays a (small) transition latency, and every
//! step is a full Lambda invocation with all of Table 1's overheads —
//! which is why even a "fast" workflow accumulates hundreds of
//! milliseconds per step.

use faasim_payload::Payload;
use faasim_simcore::{join_all, LatencyModel, SimDuration};

use crate::codec::encode_batch;
use crate::platform::{FaasPlatform, FnError, InvokeOutcome};

/// One node of a workflow definition.
#[derive(Clone, Debug)]
pub enum Step {
    /// Invoke a named function with the current payload.
    Invoke {
        /// Function name.
        func: String,
        /// Attempts before giving up (≥1); retries re-invoke on handler
        /// error or timeout.
        attempts: u32,
    },
    /// Run branches concurrently on the same input; their outputs are
    /// joined with [`crate::codec::encode_batch`] in branch order.
    Parallel(Vec<Workflow>),
}

/// A workflow: an ordered list of steps.
#[derive(Clone, Debug, Default)]
pub struct Workflow {
    steps: Vec<Step>,
}

/// Where a workflow run ended up.
#[derive(Clone, Debug)]
pub struct WorkflowOutcome {
    /// Final payload (of the last step / joined branches).
    pub result: Result<Payload, WorkflowError>,
    /// Total invocations made (including retries).
    pub invocations: u32,
    /// End-to-end latency.
    pub total: SimDuration,
}

/// A workflow failure: which function, after how many attempts, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkflowError {
    /// The failing function.
    pub func: String,
    /// Attempts made.
    pub attempts: u32,
    /// The last error.
    pub error: FnError,
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {:?} failed after {} attempt(s): {}",
            self.func, self.attempts, self.error
        )
    }
}

impl std::error::Error for WorkflowError {}

impl Workflow {
    /// An empty workflow (the identity on payloads).
    pub fn new() -> Workflow {
        Workflow::default()
    }

    /// Append a single-attempt invocation step.
    pub fn then(mut self, func: impl Into<String>) -> Workflow {
        self.steps.push(Step::Invoke {
            func: func.into(),
            attempts: 1,
        });
        self
    }

    /// Append an invocation step with retries.
    pub fn then_with_retries(mut self, func: impl Into<String>, attempts: u32) -> Workflow {
        self.steps.push(Step::Invoke {
            func: func.into(),
            attempts: attempts.max(1),
        });
        self
    }

    /// Append a parallel fan-out of sub-workflows.
    pub fn parallel(mut self, branches: Vec<Workflow>) -> Workflow {
        self.steps.push(Step::Parallel(branches));
        self
    }

    /// Number of steps (top level).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty workflow.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The orchestrator control plane.
#[derive(Clone)]
pub struct Orchestrator {
    platform: FaasPlatform,
    /// Latency of each state transition in the orchestrator (Step
    /// Functions bills and delays per transition; ~25 ms observed).
    pub transition_latency: LatencyModel,
}

impl Orchestrator {
    /// Create an orchestrator over a platform.
    pub fn new(platform: &FaasPlatform) -> Orchestrator {
        Orchestrator {
            platform: platform.clone(),
            transition_latency: LatencyModel::Constant(SimDuration::from_millis(25)),
        }
    }

    /// Execute `workflow` on `input`.
    pub async fn run(&self, workflow: &Workflow, input: impl Into<Payload>) -> WorkflowOutcome {
        let sim = self.platform.sim_handle();
        let t0 = sim.now();
        let mut invocations = 0u32;
        let result = self
            .run_steps(&workflow.steps, input.into(), &mut invocations)
            .await;
        WorkflowOutcome {
            result,
            invocations,
            total: sim.now() - t0,
        }
    }

    async fn run_steps(
        &self,
        steps: &[Step],
        mut payload: Payload,
        invocations: &mut u32,
    ) -> Result<Payload, WorkflowError> {
        let sim = self.platform.sim_handle();
        for step in steps {
            let d = {
                let mut rng = sim.rng("faas.orchestrator");
                self.transition_latency.sample(&mut rng)
            };
            sim.sleep(d).await;
            match step {
                Step::Invoke { func, attempts } => {
                    let mut last: Option<InvokeOutcome> = None;
                    let mut made = 0u32;
                    for _ in 0..*attempts {
                        made += 1;
                        *invocations += 1;
                        let out = self.platform.invoke(func, payload.clone()).await;
                        let ok = out.result.is_ok();
                        last = Some(out);
                        if ok {
                            break;
                        }
                    }
                    let out = last.expect("attempts >= 1");
                    match out.result {
                        Ok(next) => payload = next,
                        Err(error) => {
                            return Err(WorkflowError {
                                func: func.clone(),
                                attempts: made,
                                error,
                            })
                        }
                    }
                }
                Step::Parallel(branches) => {
                    // Fan out: each branch sees the same input. Each
                    // branch tracks its own invocation count; sum after.
                    let futs: Vec<_> = branches
                        .iter()
                        .map(|branch| {
                            let this = self.clone();
                            let input = payload.clone();
                            let branch = branch.clone();
                            async move {
                                let mut n = 0u32;
                                let r = this.run_steps(&branch.steps, input, &mut n).await;
                                (r, n)
                            }
                        })
                        .collect();
                    let outcomes = join_all(futs).await;
                    let mut outputs = Vec::with_capacity(outcomes.len());
                    for (r, n) in outcomes {
                        *invocations += n;
                        outputs.push(r?);
                    }
                    payload = encode_batch(&outputs);
                }
            }
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use crate::codec::decode_batch;
    use crate::config::FaasProfile;
    use crate::platform::FunctionSpec;
    use faasim_net::{Fabric, NetProfile};
    use faasim_pricing::{Ledger, PriceBook};
    use faasim_simcore::{Recorder, Sim};
    use std::cell::Cell;
    use std::rc::Rc;

    fn setup() -> (Sim, FaasPlatform) {
        let sim = Sim::new(71);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let platform = FaasPlatform::new(
            &sim,
            &fabric,
            FaasProfile::aws_2018().exact(),
            Rc::new(PriceBook::aws_2018()),
            Ledger::new(),
            recorder,
        );
        (sim, platform)
    }

    fn appender(name: &'static str, suffix: &'static str) -> FunctionSpec {
        FunctionSpec::new(
            name,
            128,
            SimDuration::from_secs(30),
            move |_ctx, payload| async move {
                let mut v = payload.to_vec();
                v.extend_from_slice(suffix.as_bytes());
                Ok(Bytes::from(v))
            },
        )
    }

    #[test]
    fn sequence_threads_payloads() {
        let (sim, platform) = setup();
        platform.register(appender("a", "-a"));
        platform.register(appender("b", "-b"));
        let wf = Workflow::new().then("a").then("b");
        assert_eq!(wf.len(), 2);
        let orch = Orchestrator::new(&platform);
        let out = sim.block_on(async move { orch.run(&wf, Bytes::from_static(b"x")).await });
        assert!(out.result.unwrap().eq_bytes(b"x-a-b"));
        assert_eq!(out.invocations, 2);
        // Two steps: ≥ 2 invocation overheads + a cold start each (fresh
        // containers) — composition pays Table 1 per hop.
        assert!(out.total.as_secs_f64() > 0.6);
    }

    #[test]
    fn parallel_fans_out_and_joins_in_order() {
        let (sim, platform) = setup();
        platform.register(appender("left", "-L"));
        platform.register(appender("right", "-R"));
        platform.register(FunctionSpec::new(
            "join",
            128,
            SimDuration::from_secs(30),
            |_ctx, payload| async move {
                let parts = decode_batch(&payload).expect("joined batch");
                let mut v = Vec::new();
                for p in parts {
                    v.extend_from_slice(&p.to_vec());
                    v.push(b'+');
                }
                Ok(Bytes::from(v))
            },
        ));
        let wf = Workflow::new()
            .parallel(vec![
                Workflow::new().then("left"),
                Workflow::new().then("right"),
            ])
            .then("join");
        let orch = Orchestrator::new(&platform);
        let out = sim.block_on(async move { orch.run(&wf, Bytes::from_static(b"x")).await });
        assert!(out.result.unwrap().eq_bytes(b"x-L+x-R+"));
        assert_eq!(out.invocations, 3);
    }

    #[test]
    fn parallel_branches_overlap_in_time() {
        let (sim, platform) = setup();
        platform.register(FunctionSpec::new(
            "slow",
            128,
            SimDuration::from_secs(60),
            |ctx, p| async move {
                ctx.sim().sleep(SimDuration::from_secs(10)).await;
                Ok(p)
            },
        ));
        let wf = Workflow::new().parallel(vec![
            Workflow::new().then("slow"),
            Workflow::new().then("slow"),
            Workflow::new().then("slow"),
        ]);
        let orch = Orchestrator::new(&platform);
        let out = sim.block_on(async move { orch.run(&wf, Bytes::new()).await });
        assert!(out.result.is_ok());
        // Three 10 s branches concurrently: ~10 s + overheads, not ~30 s.
        let secs = out.total.as_secs_f64();
        assert!(secs < 18.0, "parallel branches serialized: {secs}s");
    }

    #[test]
    fn retries_then_success_and_failure_reporting() {
        let (sim, platform) = setup();
        let tries = Rc::new(Cell::new(0u32));
        let t = tries.clone();
        platform.register(FunctionSpec::new(
            "flaky",
            128,
            SimDuration::from_secs(30),
            move |_ctx, p| {
                let t = t.clone();
                async move {
                    t.set(t.get() + 1);
                    if t.get() < 3 {
                        Err(FnError::Handler("transient".into()))
                    } else {
                        Ok(p)
                    }
                }
            },
        ));
        platform.register(FunctionSpec::new(
            "always-fails",
            128,
            SimDuration::from_secs(30),
            |_ctx, _| async move { Err::<Payload, _>(FnError::Handler("permanent".into())) },
        ));
        let orch = Orchestrator::new(&platform);
        let wf_ok = Workflow::new().then_with_retries("flaky", 5);
        let o2 = orch.clone();
        let ok = sim.block_on(async move { o2.run(&wf_ok, Bytes::new()).await });
        assert!(ok.result.is_ok());
        assert_eq!(ok.invocations, 3, "two failures then success");

        let wf_bad = Workflow::new().then_with_retries("always-fails", 2).then("flaky");
        let bad = sim.block_on(async move { orch.run(&wf_bad, Bytes::new()).await });
        let err = bad.result.unwrap_err();
        assert_eq!(err.func, "always-fails");
        assert_eq!(err.attempts, 2);
        // The downstream step never ran.
        assert_eq!(bad.invocations, 2);
    }

    #[test]
    fn empty_workflow_is_identity() {
        let (sim, platform) = setup();
        let orch = Orchestrator::new(&platform);
        let wf = Workflow::new();
        assert!(wf.is_empty());
        let out = sim.block_on(async move { orch.run(&wf, Bytes::from_static(b"same")).await });
        assert!(out.result.unwrap().eq_bytes(b"same"));
        assert_eq!(out.invocations, 0);
    }
}
