//! # faasim-faas
//!
//! A Lambda-like Functions-as-a-Service platform over the simulated
//! cloud, reproducing the constraints the paper's §3 enumerates:
//!
//! 1. **Limited lifetimes** — invocations are killed at 15 minutes;
//!    container warm state is best-effort and never guaranteed.
//! 2. **I/O bottlenecks** — function containers are packed onto shared
//!    host VMs whose NIC is fair-shared (538 Mbps alone, ~28.7 Mbps at
//!    20-way packing).
//! 3. **Communication through slow storage** — functions are not
//!    network-addressable; the only way in is an invocation, the only way
//!    out is a storage/queue service.
//! 4. **No specialized hardware** — the platform exposes exactly one
//!    resource knob, memory, which also sets the CPU share
//!    (1,792 MB ≙ 1 reference core, capped at 3,008 MB).
//!
//! Billing is per-request plus GB-seconds in 100 ms increments, matching
//! the 2018 price card in `faasim-pricing`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod codec;
mod config;
mod platform;
mod trigger;
mod workflow;

pub use codec::{decode_batch, encode_batch};
pub use config::FaasProfile;
pub use platform::{
    FaasFaults, FaasPlatform, FnCtx, FnError, FunctionSpec, HandlerResult, InvokeOutcome,
    PackingStats,
};
pub use trigger::{add_blob_trigger, add_queue_trigger, BlobTriggerBuilder, TriggerHandle};
pub use workflow::{Orchestrator, Step, Workflow, WorkflowError, WorkflowOutcome};
