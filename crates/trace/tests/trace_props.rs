//! Property tests for the trace generator, mirroring the queue's
//! state-machine props: for arbitrary seeds and arrival mixes the event
//! stream must be time-ordered and horizon-bounded, per-app Poisson
//! rates must land within sampling tolerance of the configured Zipf
//! split, popularity must actually be head-heavy, and the same seed must
//! reproduce the stream byte for byte.

use faasim_simcore::{SimDuration, SimTime};
use faasim_trace::{TraceConfig, TraceEvent, TraceGenerator};
use proptest::prelude::*;

/// A two-minute, 24-app trace with a configurable arrival mix.
fn mixed_cfg(rate: f64, bursty: f64, diurnal: f64) -> TraceConfig {
    TraceConfig {
        apps: 24,
        total_rate: rate,
        duration: SimDuration::from_secs(120),
        bursty_fraction: bursty,
        diurnal_fraction: diurnal,
        ..TraceConfig::small()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn times_are_nondecreasing_and_events_well_formed(
        seed in 0u64..10_000,
        rate in 5.0f64..60.0,
        bursty in 0.0f64..0.5,
        diurnal in 0.0f64..0.5,
    ) {
        let cfg = mixed_cfg(rate, bursty, diurnal);
        let horizon = SimTime::ZERO + cfg.duration;
        let mut last = SimTime::ZERO;
        for ev in TraceGenerator::new(cfg.clone(), seed) {
            prop_assert!(ev.at >= last, "time went backwards");
            prop_assert!(ev.at <= horizon, "event past the horizon");
            prop_assert!(ev.app < cfg.apps);
            prop_assert!(ev.func < cfg.funcs_per_app);
            prop_assert!((64..=1024 * 1024).contains(&ev.payload_bytes));
            last = ev.at;
        }
    }

    #[test]
    fn poisson_per_app_counts_match_the_zipf_split(seed in 0u64..10_000) {
        // Pure-Poisson mix so each app's count is Poisson(rate·T): every
        // app must land within 6σ (plus a small-count floor) of its mean.
        let cfg = TraceConfig {
            apps: 6,
            zipf_s: 0.6,
            total_rate: 60.0,
            duration: SimDuration::from_secs(400),
            bursty_fraction: 0.0,
            diurnal_fraction: 0.0,
            ..TraceConfig::small()
        };
        let rates = cfg.app_rates();
        let mut counts = vec![0u64; cfg.apps as usize];
        for ev in TraceGenerator::new(cfg.clone(), seed) {
            counts[ev.app as usize] += 1;
        }
        let secs = cfg.duration.as_secs_f64();
        for (app, (&n, &rate)) in counts.iter().zip(&rates).enumerate() {
            let expected = rate * secs;
            let slack = 6.0 * expected.sqrt() + 10.0;
            prop_assert!(
                (n as f64 - expected).abs() <= slack,
                "app {}: {} events, expected {:.0} ± {:.0}", app, n, expected, slack
            );
        }
    }

    #[test]
    fn zipf_popularity_is_head_heavy(
        seed in 0u64..10_000,
        zipf_s in 0.5f64..1.5,
    ) {
        let cfg = TraceConfig {
            apps: 8,
            zipf_s,
            total_rate: 40.0,
            duration: SimDuration::from_secs(300),
            bursty_fraction: 0.0,
            diurnal_fraction: 0.0,
            ..TraceConfig::small()
        };
        // The configured per-app rates are strictly rank-monotone ...
        let rates = cfg.app_rates();
        for pair in rates.windows(2) {
            prop_assert!(pair[0] > pair[1], "rates not Zipf-monotone");
        }
        // ... and the realized stream reflects it: the hottest app
        // out-draws the coldest by a clear margin.
        let mut counts = vec![0u64; cfg.apps as usize];
        for ev in TraceGenerator::new(cfg, seed) {
            counts[ev.app as usize] += 1;
        }
        prop_assert!(
            counts[0] > counts[7] + 3 * (counts[7] as f64).sqrt() as u64,
            "head {} vs tail {} — not head-heavy", counts[0], counts[7]
        );
    }

    #[test]
    fn tenancy_never_perturbs_the_event_stream(
        seed in 0u64..10_000,
        tenants in 2u32..12,
    ) {
        // Tenant assignment draws only from its own named streams: with
        // the tenant count at 1 the stream must stay byte-identical to
        // any other tenant count on every non-tenant field, and every
        // event must land on tenant 0.
        let mut single = TraceConfig {
            max_events: 1_500,
            ..mixed_cfg(25.0, 0.25, 0.25)
        };
        single.tenants = 1;
        let mut multi = single.clone();
        multi.tenants = tenants;
        let a: Vec<TraceEvent> = TraceGenerator::new(single, seed).collect();
        let b: Vec<TraceEvent> = TraceGenerator::new(multi.clone(), seed).collect();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.tenant, 0, "single-tenant trace must use tenant 0");
            prop_assert!(y.tenant < tenants);
            prop_assert_eq!(
                (x.at, x.app, x.func, x.payload_bytes),
                (y.at, y.app, y.func, y.payload_bytes),
                "tenant count changed the event stream"
            );
            prop_assert_eq!(y.tenant, faasim_trace::tenant_of(&multi, seed, y.app));
        }
    }

    #[test]
    fn same_seed_reproduces_the_stream_byte_for_byte(seed in 0u64..10_000) {
        let cfg = TraceConfig {
            max_events: 2_000,
            ..mixed_cfg(30.0, 0.3, 0.3)
        };
        let a: Vec<TraceEvent> = TraceGenerator::new(cfg.clone(), seed).collect();
        let b: Vec<TraceEvent> = TraceGenerator::new(cfg.clone(), seed).collect();
        prop_assert_eq!(&a, &b);
        let c: Vec<TraceEvent> = TraceGenerator::new(cfg, seed.wrapping_add(1)).collect();
        prop_assert_ne!(a, c);
    }
}
