//! Differential tests for the streaming quantile sketch: on traces small
//! enough to materialize every latency sample, the sketch's percentile
//! estimates must sit within its configured relative-error bound of the
//! exact nearest-rank percentiles over the sorted sample vector.

use faasim_simcore::SimRng;
use faasim_trace::{replay, QuantileSketch, ReplayConfig};
use proptest::prelude::*;

/// Exact nearest-rank percentile, the same convention the sketch (and
/// the recorder's histogram) uses.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

#[test]
fn sketch_matches_exact_percentiles_on_a_50k_replay() {
    let mut cfg = ReplayConfig::small();
    cfg.trace.total_rate = 180.0; // ~54k arrivals over five minutes ...
    cfg.trace.max_events = 50_000; // ... capped at the 50k bound
    cfg.latency_sample_cap = 50_000; // materialize every sample for the diff
    let out = replay(&cfg, 2019, &|_| {});
    assert_eq!(out.latencies.len() as u64, out.report.invocations);
    assert!(out.report.invocations > 40_000, "trace came out too small");

    let mut sorted = out.latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let alpha = cfg.sketch_alpha;
    for (q, est) in [
        (0.50, out.report.latency_p50),
        (0.95, out.report.latency_p95),
        (0.99, out.report.latency_p99),
        (0.999, out.report.latency_p999),
    ] {
        let exact = exact_quantile(&sorted, q);
        assert!(
            (est - exact).abs() <= alpha * exact + 1e-12,
            "q={q}: sketch {est} vs exact {exact} (α={alpha})"
        );
    }
    // The mean is tracked exactly (same sum, same insertion order).
    let exact_mean = out.latencies.iter().sum::<f64>() / out.latencies.len() as f64;
    assert!((out.report.latency_mean - exact_mean).abs() <= 1e-9 * exact_mean);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sketch_tracks_exact_quantiles_on_lognormal_data(
        seed in 0u64..10_000,
        n in 100usize..3_000,
        cv in 0.2f64..3.0,
    ) {
        let mut rng = SimRng::stream(seed, "sketch.diff");
        let mut sketch = QuantileSketch::with_default_error();
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            let v = rng.lognormal_mean_cv(0.25, cv);
            sketch.insert(v);
            vals.push(v);
        }
        vals.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&vals, q);
            let est = sketch.quantile(q);
            prop_assert!(
                (est - exact).abs() <= sketch.relative_error() * exact + 1e-12,
                "q={}: sketch {} vs exact {}", q, est, exact
            );
        }
    }
}
