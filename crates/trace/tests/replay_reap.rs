//! The keep-alive janitor running *during* a replay must never strand a
//! busy container, double-count cold starts, or perturb determinism —
//! the reap/evict interaction the warm-container index has to survive.

use faasim_simcore::SimDuration;
use faasim_trace::{replay, ReplayConfig};

/// A short-keep-alive replay where the reaper actually fires mid-trace:
/// containers idle five seconds are reclaimed every second, so functions
/// repeatedly expire and cold-start again while traffic is in flight.
fn churny_cfg() -> ReplayConfig {
    let mut cfg = ReplayConfig::small();
    cfg.trace.max_events = 2_000;
    cfg.retry = None; // one attempt per event ⇒ exact accounting below
    cfg.reap_every = SimDuration::from_secs(1);
    cfg.profile.faas.container_idle_timeout = SimDuration::from_secs(5);
    cfg
}

#[test]
fn aggressive_mid_replay_reaping_keeps_cold_start_accounting_exact() {
    let out = replay(&churny_cfg(), 17, &|_| {});
    let r = &out.report;
    assert_eq!(r.invocations, r.generated, "requests went missing");
    assert_eq!(r.succeeded + r.failed, r.invocations);
    assert_eq!(r.failed, 0, "reaping must never kill a busy container");
    // With retries disabled, the platform sees exactly one execution per
    // trace event: cold + warm must tile the attempts with no double
    // counting, even though the janitor deleted containers all along.
    assert_eq!(r.attempts, r.invocations, "no retries ⇒ one attempt per event");
    assert!(
        r.cold_starts >= r.distinct_functions,
        "every function's first execution is necessarily cold"
    );
    assert!(r.cold_starts <= r.attempts);
    // The short keep-alive must actually bite: far more cold starts than
    // the one-per-function floor.
    assert!(
        r.cold_starts > 2 * r.distinct_functions,
        "janitor never fired: {} colds for {} functions",
        r.cold_starts,
        r.distinct_functions
    );
}

#[test]
fn replay_under_aggressive_reaping_stays_deterministic() {
    let a = replay(&churny_cfg(), 17, &|_| {});
    let b = replay(&churny_cfg(), 17, &|_| {});
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.report, b.report);
    assert_eq!(a.bill, b.bill);
}
