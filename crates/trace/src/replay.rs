//! Stream a generated trace through the simulated FaaS platform and
//! report what the paper says matters: cold-start rate, client-observed
//! latency percentiles, per-app fairness, container packing density, and
//! dollars per hour.
//!
//! The driver task walks the lazy [`TraceGenerator`], sleeps to each
//! arrival instant, and fires an invocation task per event — optionally
//! through the resilience layer's [`RetryingInvoker`] so chaos plans can
//! be absorbed the way a production client would. In-flight invocations
//! are capped by a semaphore, so memory stays bounded by the cap (plus
//! `O(apps + functions)` bookkeeping), never by trace length. A keep-alive
//! reaper runs alongside, reclaiming idle containers mid-replay exactly
//! like the platform's real idle janitor.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use faasim::{Cloud, CloudProfile};
use faasim_gateway::{Gateway, GatewayConfig, GatewayError, RetryingGateway, TenantConfig};
use faasim_payload::Payload;
use faasim_resilience::{BreakerConfig, Deadline, RetryError, RetryPolicy, RetryingInvoker};
use faasim_simcore::{Semaphore, SimDuration, SimProfile, SimTime};

use crate::sketch::QuantileSketch;
use crate::workload::{
    function_name, function_profile, tenant_rates, TraceConfig, TraceGenerator,
};

/// Replay knobs on top of the trace itself.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// The workload to generate and stream.
    pub trace: TraceConfig,
    /// Cloud calibration to run against.
    pub profile: CloudProfile,
    /// Client-side retry policy; `None` invokes the platform directly
    /// (one attempt per trace event).
    pub retry: Option<RetryPolicy>,
    /// How often the keep-alive reaper reclaims idle containers.
    pub reap_every: SimDuration,
    /// Cap on concurrently in-flight client requests (bounds memory).
    pub max_in_flight: usize,
    /// Quantile-sketch relative error bound.
    pub sketch_alpha: f64,
    /// Materialize at most this many raw latency samples (in completion
    /// order) into [`ReplayOutcome::latencies`]. Percentiles always come
    /// from the bounded sketch; this cap only exists so differential
    /// tests can compare sketch estimates against exact ranks. `0` (the
    /// default) keeps replay memory bounded by `max_in_flight +
    /// O(apps + functions)` regardless of trace length.
    pub latency_sample_cap: usize,
    /// Route every invocation through the multi-tenant gateway tier,
    /// sized by this recipe; `None` invokes the platform directly.
    pub gateway: Option<GatewaySpec>,
}

/// How to size the gateway for a trace. The per-tenant limits are
/// derived at replay time from the trace's own expected tenant rates
/// (which depend on the seed via the tenant assignment), so one spec
/// serves every seed of a sweep.
#[derive(Clone, Debug)]
pub struct GatewaySpec {
    /// Per-tenant token rate = `rate_margin` × the tenant's expected
    /// mean arrival rate. Must exceed the bursty ON-phase boost (up to
    /// `(burst_on + burst_off) / burst_on`, 4–6× in the stock configs)
    /// or calm traffic would be shed.
    pub rate_margin: f64,
    /// Bucket capacity in seconds of margined rate.
    pub burst_secs: f64,
    /// Per-tenant concurrency cap in seconds of margined rate…
    pub conc_secs: f64,
    /// …plus this floor (absorbs cold-start latency spikes of cold
    /// tenants).
    pub conc_floor: usize,
    /// Load-shed watermarks per priority tier, as fractions of the
    /// replay's `max_in_flight`.
    pub watermarks: [f64; faasim_gateway::TIERS],
    /// Per-tenant breaker tuning.
    pub breaker: BreakerConfig,
    /// Constant per-request gateway overhead.
    pub overhead: SimDuration,
}

impl Default for GatewaySpec {
    fn default() -> GatewaySpec {
        GatewaySpec {
            rate_margin: 8.0,
            burst_secs: 20.0,
            conc_secs: 15.0,
            conc_floor: 64,
            // Replay-oriented: shed only near saturation, and never the
            // top tier before the hard cap.
            watermarks: [0.85, 0.90, 0.95, 1.0],
            breaker: BreakerConfig::default(),
            overhead: SimDuration::from_millis(1),
        }
    }
}

/// Priority tier for a tenant in replay: round-robin from the hottest
/// tenant down, so every tier is populated and tenant 0 (the heaviest)
/// is shed last.
pub fn tenant_priority(tenant: u32) -> u8 {
    (faasim_gateway::TIERS as u32 - 1 - tenant % faasim_gateway::TIERS as u32) as u8
}

impl GatewaySpec {
    /// Size a [`GatewayConfig`] for `trace` at `seed`.
    pub fn resolve(&self, trace: &TraceConfig, max_in_flight: usize, seed: u64) -> GatewayConfig {
        let tenants = tenant_rates(trace, seed)
            .into_iter()
            .enumerate()
            .map(|(t, expected)| {
                let rate = (expected * self.rate_margin).max(1.0);
                TenantConfig {
                    rate,
                    burst: (rate * self.burst_secs).max(16.0),
                    max_concurrent: (rate * self.conc_secs).ceil() as usize + self.conc_floor,
                    priority: tenant_priority(t as u32),
                }
            })
            .collect();
        GatewayConfig {
            tenants,
            max_in_flight,
            shed_watermarks: self.watermarks,
            breaker: self.breaker.clone(),
            overhead: self.overhead,
        }
    }
}

impl ReplayConfig {
    /// Small smoke-scale replay (~10k invocations).
    pub fn small() -> ReplayConfig {
        ReplayConfig {
            trace: TraceConfig::small(),
            profile: CloudProfile::aws_2018(),
            retry: Some(RetryPolicy::default()),
            reap_every: SimDuration::from_secs(30),
            max_in_flight: 4096,
            sketch_alpha: 0.01,
            latency_sample_cap: 0,
            gateway: Some(GatewaySpec::default()),
        }
    }

    /// Acceptance-scale replay (~1.08M invocations, 12k functions).
    pub fn paper_scale() -> ReplayConfig {
        ReplayConfig {
            trace: TraceConfig::paper_scale(),
            ..ReplayConfig::small()
        }
    }
}

/// What a replay measured. All fields are plain numbers, so reports can
/// be compared bit-for-bit across runs — the determinism harness does.
#[derive(Clone, PartialEq)]
pub struct ReplayReport {
    /// Seed the trace and cloud were built from.
    pub seed: u64,
    /// Trace events generated (arrivals).
    pub generated: u64,
    /// Client requests that ran to a final outcome.
    pub invocations: u64,
    /// Requests whose final outcome was success.
    pub succeeded: u64,
    /// Requests that failed after exhausting retries (or on first error
    /// when retries are disabled).
    pub failed: u64,
    /// Platform-level executions, including retry attempts.
    pub attempts: u64,
    /// Executions that had to cold-start a container.
    pub cold_starts: u64,
    /// `cold_starts / attempts`.
    pub cold_start_rate: f64,
    /// Client-observed latency percentiles in seconds (sketch estimates
    /// within the configured relative error).
    pub latency_p50: f64,
    /// 95th percentile latency (seconds).
    pub latency_p95: f64,
    /// 99th percentile latency (seconds).
    pub latency_p99: f64,
    /// 99.9th percentile latency (seconds).
    pub latency_p999: f64,
    /// Mean latency in seconds (exact).
    pub latency_mean: f64,
    /// p95 / p50 of per-app mean latencies — how unevenly apps are
    /// served (1.0 = perfectly even).
    pub fairness_spread: f64,
    /// Apps that completed at least one request.
    pub apps_seen: u32,
    /// Distinct functions that completed at least one request.
    pub distinct_functions: u64,
    /// GB·seconds spent executing handlers.
    pub busy_gb_seconds: f64,
    /// GB·seconds of container residency (warm + busy).
    pub resident_gb_seconds: f64,
    /// `busy / resident` — the fraction of keep-alive memory-time doing
    /// real work.
    pub packing_density: f64,
    /// Payload transfers started on function-host NICs.
    pub nic_transfers: u64,
    /// Worst concurrent fan-in any single function-host NIC saw.
    pub nic_peak_fan_in: u64,
    /// Mean concurrent flows per NIC at transfer start.
    pub nic_mean_fan_in: f64,
    /// Lowest per-flow fair-share estimate at any transfer start, in
    /// Mbit/s (`0` when no transfers ran) — §3(2)'s bandwidth collapse.
    pub nic_min_share_mbps: f64,
    /// Total bill across all services.
    pub dollars: f64,
    /// Bill normalized to simulated wall time.
    pub dollars_per_hour: f64,
    /// Simulated seconds from start to the last completed request.
    pub sim_secs: f64,
    /// Requests that waited on the account concurrency limit.
    pub throttled_waits: u64,
    /// Chaos: containers killed mid-invocation.
    pub chaos_kills: u64,
    /// Chaos: warm containers evicted by storms.
    pub chaos_evicted: u64,
    /// Distinct tenants that completed at least one request (0 when the
    /// gateway is disabled — tenancy is only observed at the front door).
    pub tenants_seen: u32,
    /// p95 / p50 of per-tenant mean latencies (1.0 = perfectly even;
    /// 0 when the gateway is disabled).
    pub tenant_fairness_spread: f64,
    /// Worst per-tenant p99 latency in seconds.
    pub tenant_p99_max: f64,
    /// Median per-tenant p99 latency in seconds.
    pub tenant_p99_median: f64,
    /// Gateway: requests offered at the front door.
    pub gw_offered: u64,
    /// Gateway: requests admitted to the platform.
    pub gw_admitted: u64,
    /// Gateway: attempts shed by per-tenant rate/concurrency limits.
    pub gw_rate_shed: u64,
    /// Gateway: attempts shed by the priority load shedder.
    pub gw_load_shed: u64,
    /// Gateway: attempts rejected by open per-tenant breakers.
    pub gw_breaker_rejected: u64,
    /// Requests whose *final* outcome (after retries) was a gateway
    /// shed — a subset of `failed`.
    pub gw_shed_requests: u64,
    /// Gateway: peak concurrent admitted requests.
    pub gw_peak_in_flight: u64,
    /// Engine-level profile of the run: task polls, timer-wheel traffic,
    /// spawn counts. Deterministic for a given seed, but excluded from
    /// `Debug` so chaos-sweep digests (which fold `{:?}` of the report)
    /// stay comparable across engine-internal refactors.
    pub engine: SimProfile,
}

impl fmt::Debug for ReplayReport {
    // Hand-rolled to match the pre-`engine` derived output byte-for-byte:
    // the chaos sweep folds `format!("{:?}")` of this report into its run
    // digests, which the determinism harness compares across releases.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplayReport")
            .field("seed", &self.seed)
            .field("generated", &self.generated)
            .field("invocations", &self.invocations)
            .field("succeeded", &self.succeeded)
            .field("failed", &self.failed)
            .field("attempts", &self.attempts)
            .field("cold_starts", &self.cold_starts)
            .field("cold_start_rate", &self.cold_start_rate)
            .field("latency_p50", &self.latency_p50)
            .field("latency_p95", &self.latency_p95)
            .field("latency_p99", &self.latency_p99)
            .field("latency_p999", &self.latency_p999)
            .field("latency_mean", &self.latency_mean)
            .field("fairness_spread", &self.fairness_spread)
            .field("apps_seen", &self.apps_seen)
            .field("distinct_functions", &self.distinct_functions)
            .field("busy_gb_seconds", &self.busy_gb_seconds)
            .field("resident_gb_seconds", &self.resident_gb_seconds)
            .field("packing_density", &self.packing_density)
            .field("nic_transfers", &self.nic_transfers)
            .field("nic_peak_fan_in", &self.nic_peak_fan_in)
            .field("nic_mean_fan_in", &self.nic_mean_fan_in)
            .field("nic_min_share_mbps", &self.nic_min_share_mbps)
            .field("dollars", &self.dollars)
            .field("dollars_per_hour", &self.dollars_per_hour)
            .field("sim_secs", &self.sim_secs)
            .field("throttled_waits", &self.throttled_waits)
            .field("chaos_kills", &self.chaos_kills)
            .field("chaos_evicted", &self.chaos_evicted)
            .field("tenants_seen", &self.tenants_seen)
            .field("tenant_fairness_spread", &self.tenant_fairness_spread)
            .field("tenant_p99_max", &self.tenant_p99_max)
            .field("tenant_p99_median", &self.tenant_p99_median)
            .field("gw_offered", &self.gw_offered)
            .field("gw_admitted", &self.gw_admitted)
            .field("gw_rate_shed", &self.gw_rate_shed)
            .field("gw_load_shed", &self.gw_load_shed)
            .field("gw_breaker_rejected", &self.gw_breaker_rejected)
            .field("gw_shed_requests", &self.gw_shed_requests)
            .field("gw_peak_in_flight", &self.gw_peak_in_flight)
            .finish()
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "replay seed={} — {} invocations ({} generated) over {:.1} sim-secs",
            self.seed, self.invocations, self.generated, self.sim_secs
        )?;
        writeln!(
            f,
            "  outcomes    {} ok / {} failed, {} attempts, {} throttled waits",
            self.succeeded, self.failed, self.attempts, self.throttled_waits
        )?;
        writeln!(
            f,
            "  cold starts {} ({:.2}% of attempts)",
            self.cold_starts,
            self.cold_start_rate * 100.0
        )?;
        writeln!(
            f,
            "  latency     p50 {:.1} ms · p95 {:.1} ms · p99 {:.1} ms · p99.9 {:.1} ms · mean {:.1} ms",
            self.latency_p50 * 1e3,
            self.latency_p95 * 1e3,
            self.latency_p99 * 1e3,
            self.latency_p999 * 1e3,
            self.latency_mean * 1e3,
        )?;
        writeln!(
            f,
            "  fairness    p95/p50 app-mean spread {:.2} across {} apps, {} functions",
            self.fairness_spread, self.apps_seen, self.distinct_functions
        )?;
        writeln!(
            f,
            "  packing     {:.1} busy GB·s / {:.1} resident GB·s = {:.1}% density",
            self.busy_gb_seconds,
            self.resident_gb_seconds,
            self.packing_density * 100.0
        )?;
        writeln!(
            f,
            "  network     {} NIC transfers, fan-in peak {} / mean {:.1}, min fair share {:.1} Mbit/s",
            self.nic_transfers, self.nic_peak_fan_in, self.nic_mean_fan_in, self.nic_min_share_mbps
        )?;
        if self.gw_offered > 0 {
            writeln!(
                f,
                "  tenants     {} seen · p99 worst {:.1} ms / median {:.1} ms · mean-latency spread {:.2}",
                self.tenants_seen,
                self.tenant_p99_max * 1e3,
                self.tenant_p99_median * 1e3,
                self.tenant_fairness_spread,
            )?;
            writeln!(
                f,
                "  gateway     {} offered = {} admitted + {} rate + {} load + {} breaker shed · {} requests shed for good · peak {} in flight",
                self.gw_offered,
                self.gw_admitted,
                self.gw_rate_shed,
                self.gw_load_shed,
                self.gw_breaker_rejected,
                self.gw_shed_requests,
                self.gw_peak_in_flight,
            )?;
        }
        if self.chaos_kills > 0 || self.chaos_evicted > 0 {
            writeln!(
                f,
                "  chaos       {} kills, {} evictions",
                self.chaos_kills, self.chaos_evicted
            )?;
        }
        writeln!(f, "  engine      {}", self.engine)?;
        write!(
            f,
            "  cost        ${:.4} total = ${:.4}/hr",
            self.dollars, self.dollars_per_hour
        )
    }
}

/// A replay's full result: the report plus the raw determinism artifacts.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The measured report.
    pub report: ReplayReport,
    /// `Recorder::digest()` of the underlying cloud — byte-identical
    /// across same-seed replays.
    pub digest: String,
    /// Ledger report of the underlying cloud.
    pub bill: String,
    /// The first [`ReplayConfig::latency_sample_cap`] latency samples,
    /// in completion order (empty by default).
    pub latencies: Vec<f64>,
}

struct AppAgg {
    completed: u64,
    lat_sum: f64,
}

struct TenantAgg {
    sketch: QuantileSketch,
    completed: u64,
    lat_sum: f64,
}

struct Stats {
    sketch: QuantileSketch,
    per_app: Vec<AppAgg>,
    per_tenant: Vec<TenantAgg>,
    seen_funcs: Vec<bool>,
    succeeded: u64,
    failed: u64,
    gw_shed: u64,
    completed: u64,
    last_done: SimTime,
    latencies: Vec<f64>,
}

/// How the replay reaches the platform: directly, through client
/// retries, or through the gateway tier (with or without retries).
enum Client {
    Direct(faasim_faas::FaasPlatform),
    Retry(RetryingInvoker),
    Gw(Gateway),
    GwRetry(RetryingGateway),
}

/// Everything a spawned request task needs, bundled so the hot loop
/// clones one `Rc` per invocation instead of a handful of handles.
struct ReqCtx {
    sim: faasim_simcore::Sim,
    client: Client,
    stats: RefCell<Stats>,
    /// Function names pre-rendered once (`app * funcs_per_app + func`),
    /// so the per-event path never formats a `String`.
    names: Vec<String>,
    funcs_per_app: u32,
    latency_cap: usize,
    /// Set once the driver has spawned its last request; `done` flips
    /// when every spawned request has completed, which stops the reaper.
    total: Cell<Option<u64>>,
    done: Cell<bool>,
    generated: Cell<u64>,
}

/// Whether a final retry-wrapper error was a gateway admission shed (as
/// opposed to an exhausted run of execution failures).
fn final_err_was_shed(err: &RetryError<GatewayError>) -> bool {
    match err {
        RetryError::Exhausted { last, .. } | RetryError::Fatal(last) => last.is_shed(),
        _ => false,
    }
}

/// Run `cfg` at `seed`, applying `chaos` to the freshly built cloud
/// before any traffic flows (pass `&|_| {}` for a fault-free replay —
/// the hook keeps this crate independent of the chaos crate while its
/// `FaultPlan`s slot straight in).
pub fn replay(cfg: &ReplayConfig, seed: u64, chaos: &dyn Fn(&Cloud)) -> ReplayOutcome {
    replay_with(cfg, seed, chaos, &mut |_| {})
}

/// Like [`replay`], but also hands the quiesced cloud to `finish` after
/// the last request completes — the hook the chaos harness uses to run
/// its cross-service invariant checks before the cloud is dropped.
pub fn replay_with(
    cfg: &ReplayConfig,
    seed: u64,
    chaos: &dyn Fn(&Cloud),
    finish: &mut dyn FnMut(&Cloud),
) -> ReplayOutcome {
    let cloud = Cloud::new(cfg.profile.clone(), seed);
    chaos(&cloud);
    let sim = cloud.sim.clone();
    let faas = cloud.faas.clone();

    // Register every function; the handler burns a fresh sample of the
    // function's execution-time distribution on each invocation.
    let exec_rng = Rc::new(RefCell::new(sim.rng("trace.exec")));
    for app in 0..cfg.trace.apps {
        for func in 0..cfg.trace.funcs_per_app {
            let prof = function_profile(&cfg.trace, seed, app, func);
            let rng = exec_rng.clone();
            let mean = prof.mean_exec.as_secs_f64();
            let cv = prof.exec_cv;
            faas.register(faasim_faas::FunctionSpec::new(
                prof.name,
                prof.memory_mb,
                prof.timeout,
                move |ctx, payload| {
                    let rng = rng.clone();
                    async move {
                        // Ship the request body over the container host's
                        // shared NIC before executing — the fan-in this
                        // creates under fill-first packing is exactly the
                        // paper's §3(2) bandwidth collapse, and at paper
                        // scale it drives ~1M concurrent-flow churn through
                        // the virtual-time fair-share allocator.
                        ctx.host().nic_transfer(payload.len() as u64).await;
                        let work =
                            SimDuration::from_secs_f64(rng.borrow_mut().lognormal_mean_cv(mean, cv));
                        ctx.cpu(work).await;
                        Ok(Payload::new())
                    }
                },
            ));
        }
    }

    let funcs_per_app = cfg.trace.funcs_per_app.max(1);
    let stats = Stats {
        sketch: QuantileSketch::new(cfg.sketch_alpha),
        per_app: (0..cfg.trace.apps)
            .map(|_| AppAgg {
                completed: 0,
                lat_sum: 0.0,
            })
            .collect(),
        per_tenant: (0..cfg.trace.tenants.max(1))
            .map(|_| TenantAgg {
                sketch: QuantileSketch::new(cfg.sketch_alpha),
                completed: 0,
                lat_sum: 0.0,
            })
            .collect(),
        seen_funcs: vec![false; (cfg.trace.apps * funcs_per_app) as usize],
        succeeded: 0,
        failed: 0,
        gw_shed: 0,
        completed: 0,
        last_done: SimTime::ZERO,
        latencies: Vec::new(),
    };
    // Build the front door (when configured) and pick the client stack.
    let gateway = cfg.gateway.as_ref().map(|spec| {
        Gateway::new(
            &sim,
            &faas,
            cloud.ledger.clone(),
            cloud.recorder.clone(),
            &cloud.prices,
            spec.resolve(&cfg.trace, cfg.max_in_flight.max(1), seed),
        )
    });
    let client = match (&gateway, cfg.retry.clone()) {
        (Some(gw), Some(policy)) => Client::GwRetry(RetryingGateway::new(
            &sim,
            gw,
            cloud.recorder.clone(),
            policy,
            "trace.invoker",
        )),
        (Some(gw), None) => Client::Gw(gw.clone()),
        (None, Some(policy)) => Client::Retry(RetryingInvoker::new(
            &sim,
            &faas,
            cloud.recorder.clone(),
            policy,
            "trace.invoker",
        )),
        (None, None) => Client::Direct(faas.clone()),
    };
    let inflight = Semaphore::new(cfg.max_in_flight.max(1));
    let ctx = Rc::new(ReqCtx {
        sim: sim.clone(),
        client,
        stats: RefCell::new(stats),
        names: (0..cfg.trace.apps)
            .flat_map(|app| (0..funcs_per_app).map(move |func| function_name(app, func)))
            .collect(),
        funcs_per_app,
        latency_cap: cfg.latency_sample_cap,
        total: Cell::new(None),
        done: Cell::new(false),
        generated: Cell::new(0),
    });

    // Keep-alive reaper: runs mid-replay like the platform's idle janitor.
    {
        let (sim2, faas2, ctx2) = (sim.clone(), faas.clone(), ctx.clone());
        let every = cfg.reap_every;
        sim.spawn_detached(async move {
            while !ctx2.done.get() {
                sim2.sleep(every).await;
                faas2.reap_idle();
            }
        });
    }

    // Driver: walk the lazy generator in arrival order.
    {
        let gen = TraceGenerator::new(cfg.trace.clone(), seed);
        let ctx2 = ctx.clone();
        let inflight2 = inflight.clone();
        // One shared zero block keeps symbolic payloads allocation-free.
        let zero_block = Payload::zeros(256).bytes();
        sim.spawn_detached(async move {
            let mut spawned = 0u64;
            for ev in gen {
                ctx2.sim.sleep_until(ev.at).await;
                let permit = inflight2.acquire(1).await;
                spawned += 1;
                let ctx3 = ctx2.clone();
                let payload = Payload::synthetic(
                    zero_block.clone(),
                    ev.payload_bytes.div_ceil(zero_block.len() as u64).max(1),
                );
                ctx2.sim.spawn_detached(async move {
                    let t0 = ctx3.sim.now();
                    let name = &ctx3.names[(ev.app * ctx3.funcs_per_app + ev.func) as usize];
                    // `ok` is the request's final outcome; `shed` marks a
                    // final outcome that was a gateway admission refusal
                    // (rather than an execution failure).
                    let (ok, shed) = match &ctx3.client {
                        Client::Retry(inv) => (
                            inv.invoke(name, &payload, Deadline::unbounded())
                                .await
                                .is_ok(),
                            false,
                        ),
                        Client::Direct(faas) => {
                            (faas.invoke(name, payload).await.result.is_ok(), false)
                        }
                        Client::GwRetry(gw) => {
                            match gw
                                .invoke(ev.tenant, name, &payload, Deadline::unbounded())
                                .await
                            {
                                Ok(_) => (true, false),
                                Err(err) => (false, final_err_was_shed(&err)),
                            }
                        }
                        Client::Gw(gw) => match gw.invoke(ev.tenant, name, payload).await {
                            Ok(out) => (out.result.is_ok(), false),
                            Err(err) => (false, err.is_shed()),
                        },
                    };
                    let now = ctx3.sim.now();
                    let latency = now.duration_since(t0).as_secs_f64();
                    {
                        let mut st = ctx3.stats.borrow_mut();
                        st.sketch.insert(latency);
                        if st.latencies.len() < ctx3.latency_cap {
                            st.latencies.push(latency);
                        }
                        let tagg = &mut st.per_tenant[ev.tenant as usize];
                        tagg.sketch.insert(latency);
                        tagg.completed += 1;
                        tagg.lat_sum += latency;
                        let agg = &mut st.per_app[ev.app as usize];
                        agg.completed += 1;
                        agg.lat_sum += latency;
                        st.seen_funcs[(ev.app * ctx3.funcs_per_app + ev.func) as usize] = true;
                        if ok {
                            st.succeeded += 1;
                        } else {
                            st.failed += 1;
                            if shed {
                                st.gw_shed += 1;
                            }
                        }
                        st.completed += 1;
                        st.last_done = now;
                        if ctx3.total.get() == Some(st.completed) {
                            ctx3.done.set(true);
                        }
                    }
                    drop(permit);
                });
            }
            ctx2.generated.set(spawned);
            ctx2.total.set(Some(spawned));
            if ctx2.stats.borrow().completed == spawned {
                ctx2.done.set(true);
            }
        });
    }

    sim.run();
    finish(&cloud);

    let packing = faas.packing_stats();
    let nic = faas.nic_stats();
    let recorder = &cloud.recorder;
    let st = ctx.stats.borrow();
    let cold = recorder.counter("faas.invoke.cold");
    let warm = recorder.counter("faas.invoke.warm");
    let attempts = cold + warm;
    let sim_secs = st.last_done.as_secs_f64();
    let dollars = cloud.ledger.total();

    // Fairness: distribution of per-app mean latencies.
    let mut app_means: Vec<f64> = st
        .per_app
        .iter()
        .filter(|a| a.completed > 0)
        .map(|a| a.lat_sum / a.completed as f64)
        .collect();
    app_means.sort_by(f64::total_cmp);
    let rank = |q: f64| -> f64 {
        if app_means.is_empty() {
            0.0
        } else {
            app_means[((app_means.len() - 1) as f64 * q).round() as usize]
        }
    };
    let (p50_app, p95_app) = (rank(0.50), rank(0.95));

    // Tenant-level fairness: same rank statistics over per-tenant means
    // and p99s (only meaningful when traffic flowed through the gateway).
    let mut tenant_means: Vec<f64> = Vec::new();
    let mut tenant_p99s: Vec<f64> = Vec::new();
    for agg in st.per_tenant.iter().filter(|a| a.completed > 0) {
        tenant_means.push(agg.lat_sum / agg.completed as f64);
        tenant_p99s.push(agg.sketch.p99());
    }
    tenant_means.sort_by(f64::total_cmp);
    tenant_p99s.sort_by(f64::total_cmp);
    let trank = |v: &[f64], q: f64| -> f64 {
        if v.is_empty() {
            0.0
        } else {
            v[((v.len() - 1) as f64 * q).round() as usize]
        }
    };
    let gw_stats = gateway.as_ref().map(|gw| gw.stats());
    let gw_used = gw_stats.is_some();

    let report = ReplayReport {
        seed,
        generated: ctx.generated.get(),
        invocations: st.completed,
        succeeded: st.succeeded,
        failed: st.failed,
        attempts,
        cold_starts: cold,
        cold_start_rate: if attempts == 0 {
            0.0
        } else {
            cold as f64 / attempts as f64
        },
        latency_p50: st.sketch.p50(),
        latency_p95: st.sketch.p95(),
        latency_p99: st.sketch.p99(),
        latency_p999: st.sketch.p999(),
        latency_mean: st.sketch.mean(),
        fairness_spread: if p50_app > 0.0 { p95_app / p50_app } else { 0.0 },
        apps_seen: app_means.len() as u32,
        distinct_functions: st.seen_funcs.iter().filter(|&&s| s).count() as u64,
        busy_gb_seconds: packing.busy_gb_seconds,
        resident_gb_seconds: packing.resident_gb_seconds,
        packing_density: packing.density(),
        nic_transfers: nic.transfers,
        nic_peak_fan_in: nic.peak_flows,
        nic_mean_fan_in: nic.mean_fan_in(),
        nic_min_share_mbps: if nic.transfers == 0 {
            0.0
        } else {
            nic.min_fair_share / 1e6
        },
        dollars,
        dollars_per_hour: if sim_secs > 0.0 {
            dollars / (sim_secs / 3600.0)
        } else {
            0.0
        },
        sim_secs,
        throttled_waits: recorder.counter("faas.throttled_waits"),
        chaos_kills: recorder.counter("faas.chaos_kills"),
        chaos_evicted: recorder.counter("faas.chaos_evicted"),
        tenants_seen: if gw_used { tenant_means.len() as u32 } else { 0 },
        tenant_fairness_spread: if gw_used && trank(&tenant_means, 0.50) > 0.0 {
            trank(&tenant_means, 0.95) / trank(&tenant_means, 0.50)
        } else {
            0.0
        },
        tenant_p99_max: if gw_used { trank(&tenant_p99s, 1.0) } else { 0.0 },
        tenant_p99_median: if gw_used { trank(&tenant_p99s, 0.50) } else { 0.0 },
        gw_offered: gw_stats.as_ref().map_or(0, |s| s.totals.offered),
        gw_admitted: gw_stats.as_ref().map_or(0, |s| s.totals.admitted),
        gw_rate_shed: gw_stats.as_ref().map_or(0, |s| s.totals.rate_shed()),
        gw_load_shed: gw_stats.as_ref().map_or(0, |s| s.totals.load_shed),
        gw_breaker_rejected: gw_stats.as_ref().map_or(0, |s| s.totals.breaker_rejected),
        gw_shed_requests: st.gw_shed,
        gw_peak_in_flight: gw_stats.as_ref().map_or(0, |s| s.peak_in_flight),
        engine: sim.profile(),
    };
    ReplayOutcome {
        report,
        digest: recorder.digest(),
        bill: cloud.ledger.report(),
        latencies: st.latencies.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_replay_completes_every_event() {
        let mut cfg = ReplayConfig::small();
        cfg.trace.max_events = 500;
        let out = replay(&cfg, 11, &|_| {});
        assert_eq!(out.report.generated, 500);
        assert_eq!(out.report.invocations, 500);
        assert_eq!(out.report.succeeded + out.report.failed, 500);
        assert_eq!(out.report.failed, 0, "calm replay must not fail");
        // Default config routes through the gateway: every request was
        // offered at the front door, admissions conserve, and a calm
        // trace is never shed for good.
        assert!(out.report.gw_offered >= 500);
        assert_eq!(
            out.report.gw_offered,
            out.report.gw_admitted
                + out.report.gw_rate_shed
                + out.report.gw_load_shed
                + out.report.gw_breaker_rejected,
            "gateway conservation"
        );
        assert_eq!(out.report.gw_shed_requests, 0);
        assert!(out.report.tenants_seen >= 1);
        assert!(out.report.tenant_p99_max >= out.report.tenant_p99_median);
        assert!(out.report.gw_peak_in_flight >= 1);
        assert!(out.report.cold_starts > 0);
        assert!(out.report.latency_p50 > 0.0);
        assert!(out.report.latency_p99 >= out.report.latency_p50);
        assert!(out.report.packing_density > 0.0 && out.report.packing_density <= 1.0);
        assert!(out.report.dollars > 0.0);
        assert!(out.report.distinct_functions > 1);
        // Every attempt ships its payload over a host NIC, so the fan-in
        // probes must have seen real traffic.
        assert_eq!(out.report.nic_transfers, out.report.attempts);
        assert!(out.report.nic_peak_fan_in >= 1);
        assert!(out.report.nic_mean_fan_in >= 1.0);
        assert!(out.report.nic_min_share_mbps > 0.0);
    }

    #[test]
    fn same_seed_same_outcome() {
        let mut cfg = ReplayConfig::small();
        cfg.trace.max_events = 300;
        let a = replay(&cfg, 5, &|_| {});
        let b = replay(&cfg, 5, &|_| {});
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.report, b.report);
        assert_eq!(a.bill, b.bill);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = ReplayConfig::small();
        cfg.trace.max_events = 300;
        let a = replay(&cfg, 5, &|_| {});
        let b = replay(&cfg, 6, &|_| {});
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn gatewayless_replay_still_works() {
        let mut cfg = ReplayConfig::small();
        cfg.trace.max_events = 300;
        cfg.gateway = None;
        let out = replay(&cfg, 11, &|_| {});
        assert_eq!(out.report.invocations, 300);
        assert_eq!(out.report.failed, 0);
        assert_eq!(out.report.gw_offered, 0);
        assert_eq!(out.report.tenants_seen, 0);
    }

    #[test]
    fn gateway_rides_without_retries_too() {
        let mut cfg = ReplayConfig::small();
        cfg.trace.max_events = 300;
        cfg.retry = None;
        let out = replay(&cfg, 11, &|_| {});
        assert_eq!(out.report.invocations, 300);
        assert_eq!(
            out.report.gw_offered,
            out.report.gw_admitted
                + out.report.gw_rate_shed
                + out.report.gw_load_shed
                + out.report.gw_breaker_rejected,
        );
        // Single-shot sheds (if any) must be counted as shed requests.
        assert_eq!(out.report.failed, out.report.gw_shed_requests);
    }
}
