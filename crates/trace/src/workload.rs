//! Deterministic, lazily generated workload traces in the style of the
//! Azure Functions production traces: many applications with heavy-tailed
//! (Zipf) popularity, each firing invocations under its own arrival
//! process — steady Poisson, bursty on/off, or diurnal-cycle modulated —
//! against functions whose execution-time and memory profiles are drawn
//! per function from configurable distributions.
//!
//! The generator is an [`Iterator`] over [`TraceEvent`]s, merged across
//! apps through a binary heap of next-arrival times, so a
//! million-invocation trace costs `O(apps)` memory and is never
//! materialized. Every draw comes from per-app named [`SimRng`] streams:
//! the same seed always yields the byte-identical event stream.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use faasim_simcore::{SimDuration, SimRng, SimTime};

/// One invocation request in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Arrival instant (non-decreasing across the stream).
    pub at: SimTime,
    /// Application id — also its popularity rank (0 = hottest).
    pub app: u32,
    /// Function index within the app.
    pub func: u32,
    /// Request payload size in bytes.
    pub payload_bytes: u64,
    /// Owning tenant (see [`tenant_of`]); always 0 when the config has
    /// a single tenant.
    pub tenant: u32,
}

/// How one app's invocations arrive over time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless steady-state arrivals.
    Poisson,
    /// On/off bursts: silent most of the time, then arrival clusters at a
    /// boosted rate (long-run mean rate is preserved).
    Bursty,
    /// Poisson thinned against a sinusoidal daily cycle.
    Diurnal,
}

/// Everything that defines a workload trace. All fields are plain data so
/// configs can be shared across sweep worker threads.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceConfig {
    /// Number of applications; app id doubles as popularity rank.
    pub apps: u32,
    /// Functions per application.
    pub funcs_per_app: u32,
    /// Zipf exponent over app popularity (higher ⇒ heavier head).
    pub zipf_s: f64,
    /// Zipf exponent for picking a function within an app.
    pub func_zipf_s: f64,
    /// Aggregate arrival rate across all apps, invocations/sec.
    pub total_rate: f64,
    /// Trace horizon: no arrivals are generated past this point.
    pub duration: SimDuration,
    /// Hard cap on emitted events (`u64::MAX` = horizon-bounded only).
    pub max_events: u64,
    /// Fraction of apps with bursty on/off arrivals.
    pub bursty_fraction: f64,
    /// Fraction of apps with diurnal-cycle modulation.
    pub diurnal_fraction: f64,
    /// Mean burst (ON) duration for bursty apps.
    pub burst_on: SimDuration,
    /// Mean silence (OFF) duration for bursty apps.
    pub burst_off: SimDuration,
    /// Period of the diurnal cycle.
    pub diurnal_period: SimDuration,
    /// Diurnal modulation amplitude in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Mean request payload size in bytes (lognormal).
    pub payload_mean_bytes: f64,
    /// Coefficient of variation of the payload size.
    pub payload_cv: f64,
    /// Per-function mean execution time is drawn log-uniformly from this
    /// range (milliseconds) — a heavy-tailed spread *across* functions.
    pub exec_mean_ms: (f64, f64),
    /// Coefficient of variation of execution time *within* a function.
    pub exec_cv: f64,
    /// Memory sizes functions are assigned from (uniformly by hash).
    pub memory_choices_mb: Vec<u64>,
    /// Configured timeout for every generated function.
    pub func_timeout: SimDuration,
    /// Number of tenants apps are assigned to (Zipf over tenants). With
    /// `tenants <= 1` no tenant stream is ever consulted, so the event
    /// stream is byte-identical to a tenantless trace.
    pub tenants: u32,
    /// Zipf exponent over tenant popularity (higher ⇒ the hottest
    /// tenant owns more apps).
    pub tenant_zipf_s: f64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig::small()
    }
}

impl TraceConfig {
    /// A small smoke-test trace: 64 apps × 4 functions, ~10k invocations
    /// over five simulated minutes.
    pub fn small() -> TraceConfig {
        TraceConfig {
            apps: 64,
            funcs_per_app: 4,
            zipf_s: 1.1,
            func_zipf_s: 1.0,
            total_rate: 36.0,
            duration: SimDuration::from_mins(5),
            max_events: u64::MAX,
            bursty_fraction: 0.2,
            diurnal_fraction: 0.2,
            burst_on: SimDuration::from_secs(20),
            burst_off: SimDuration::from_secs(60),
            diurnal_period: SimDuration::from_mins(5),
            diurnal_amplitude: 0.8,
            payload_mean_bytes: 4096.0,
            payload_cv: 1.0,
            exec_mean_ms: (5.0, 2000.0),
            exec_cv: 0.25,
            memory_choices_mb: vec![128, 256, 512, 1024, 1536, 2048, 3008],
            func_timeout: SimDuration::from_secs(60),
            tenants: 4,
            tenant_zipf_s: 1.0,
        }
    }

    /// The acceptance-scale trace: 3,000 apps × 4 functions (12k distinct
    /// functions), ~1.08M invocations over one simulated hour.
    pub fn paper_scale() -> TraceConfig {
        TraceConfig {
            apps: 3_000,
            funcs_per_app: 4,
            total_rate: 300.0,
            duration: SimDuration::from_hours(1),
            diurnal_period: SimDuration::from_hours(1),
            burst_on: SimDuration::from_secs(60),
            burst_off: SimDuration::from_mins(5),
            tenants: 32,
            ..TraceConfig::small()
        }
    }

    /// Per-app mean arrival rates (invocations/sec), strictly decreasing
    /// in rank for any positive Zipf exponent.
    pub fn app_rates(&self) -> Vec<f64> {
        let weights: Vec<f64> = (0..self.apps)
            .map(|r| 1.0 / ((r + 1) as f64).powf(self.zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        weights
            .iter()
            .map(|w| self.total_rate * w / total)
            .collect()
    }

    /// Expected number of events over the horizon (ignores `max_events`).
    pub fn expected_events(&self) -> f64 {
        self.total_rate * self.duration.as_secs_f64()
    }
}

/// The tenant owning `app` at this seed: a Zipf draw over tenants from
/// the app's own `trace.tenant.<app>` stream, so tenancy is independent
/// of arrival generation. With `tenants <= 1` nothing is drawn and the
/// answer is always tenant 0 — existing streams stay byte-identical.
pub fn tenant_of(cfg: &TraceConfig, seed: u64, app: u32) -> u32 {
    if cfg.tenants <= 1 {
        return 0;
    }
    let mut rng = SimRng::stream(seed, &format!("trace.tenant.{app}"));
    rng.zipf(cfg.tenants as usize, cfg.tenant_zipf_s) as u32
}

/// Expected mean arrival rate per tenant (invocations/sec): the Zipf
/// app rates folded by the deterministic tenant assignment. Tenants
/// that happen to own no apps have rate 0.
pub fn tenant_rates(cfg: &TraceConfig, seed: u64) -> Vec<f64> {
    let mut rates = vec![0.0; cfg.tenants.max(1) as usize];
    for (app, rate) in cfg.app_rates().into_iter().enumerate() {
        rates[tenant_of(cfg, seed, app as u32) as usize] += rate;
    }
    rates
}

/// Identity and resource profile of one generated function, derived
/// deterministically from `(seed, app, func)` — no table of 100k specs
/// needs to exist anywhere.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionProfile {
    /// Registered function name (`a<app>-f<func>`).
    pub name: String,
    /// Allocated memory in MB (also sets the CPU share).
    pub memory_mb: u64,
    /// Mean execution time on a reference core.
    pub mean_exec: SimDuration,
    /// Within-function execution-time coefficient of variation.
    pub exec_cv: f64,
    /// Configured timeout.
    pub timeout: SimDuration,
}

/// The platform-facing name of a trace function.
pub fn function_name(app: u32, func: u32) -> String {
    format!("a{app}-f{func}")
}

/// Derive the deterministic profile of function `(app, func)` for `seed`.
pub fn function_profile(cfg: &TraceConfig, seed: u64, app: u32, func: u32) -> FunctionProfile {
    let mut rng = SimRng::stream(seed, &format!("trace.fn.{app}.{func}"));
    let (lo, hi) = cfg.exec_mean_ms;
    let (lo, hi) = (lo.max(0.001), hi.max(lo.max(0.001)));
    let mean_ms = lo * (hi / lo).powf(rng.unit_f64());
    let memory_mb = *rng.choose(&cfg.memory_choices_mb).unwrap_or(&128);
    FunctionProfile {
        name: function_name(app, func),
        memory_mb,
        mean_exec: SimDuration::from_secs_f64(mean_ms / 1e3),
        exec_cv: cfg.exec_cv,
        timeout: cfg.func_timeout,
    }
}

struct AppState {
    rng: SimRng,
    rate: f64,
    tenant: u32,
    kind: ArrivalKind,
    /// Bursty phase machine: end of the current phase and whether it's ON.
    phase_end: SimTime,
    on: bool,
}

impl AppState {
    /// Next arrival strictly derived from this app's own stream, so the
    /// merged trace is independent of iteration interleaving.
    fn next_arrival(&mut self, from: SimTime, cfg: &TraceConfig) -> SimTime {
        match self.kind {
            ArrivalKind::Poisson => from + exp_gap(&mut self.rng, self.rate),
            ArrivalKind::Diurnal => {
                let amp = cfg.diurnal_amplitude.clamp(0.0, 0.999);
                let peak = self.rate * (1.0 + amp);
                let period = cfg.diurnal_period.as_secs_f64().max(1e-9);
                let mut t = from;
                // Thinning: propose at the peak rate, accept against the
                // instantaneous sinusoidal rate.
                loop {
                    t += exp_gap(&mut self.rng, peak);
                    let phase = std::f64::consts::TAU * t.as_secs_f64() / period;
                    let instantaneous = self.rate * (1.0 + amp * phase.sin());
                    if self.rng.unit_f64() * peak < instantaneous {
                        return t;
                    }
                }
            }
            ArrivalKind::Bursty => {
                let on = cfg.burst_on.as_secs_f64().max(1e-9);
                let off = cfg.burst_off.as_secs_f64().max(0.0);
                // Boost the ON rate so the long-run mean stays `rate`.
                let on_rate = self.rate * (on + off) / on;
                let mut t = from;
                loop {
                    if !self.on {
                        t = self.phase_end;
                        self.on = true;
                        self.phase_end =
                            t + SimDuration::from_secs_f64(self.rng.exponential(on));
                    }
                    let cand = t + exp_gap(&mut self.rng, on_rate);
                    if cand < self.phase_end {
                        return cand;
                    }
                    t = self.phase_end;
                    self.on = false;
                    self.phase_end = t + SimDuration::from_secs_f64(self.rng.exponential(off));
                }
            }
        }
    }
}

fn exp_gap(rng: &mut SimRng, rate: f64) -> SimDuration {
    SimDuration::from_secs_f64(rng.exponential(1.0 / rate.max(1e-12)))
}

/// Lazy, heap-merged trace generator. See the module docs.
pub struct TraceGenerator {
    cfg: TraceConfig,
    apps: Vec<AppState>,
    /// Min-heap of `(next arrival, app)`; at most one entry per app.
    heap: BinaryHeap<Reverse<(SimTime, u32)>>,
    horizon: SimTime,
    emitted: u64,
}

impl TraceGenerator {
    /// Build the generator for `cfg` at `seed`. Costs `O(apps)` time and
    /// memory; no event is generated until the iterator is driven.
    pub fn new(cfg: TraceConfig, seed: u64) -> TraceGenerator {
        let rates = cfg.app_rates();
        let horizon = SimTime::ZERO + cfg.duration;
        let mut apps = Vec::with_capacity(cfg.apps as usize);
        let mut heap = BinaryHeap::with_capacity(cfg.apps as usize);
        for (id, &rate) in rates.iter().enumerate() {
            let mut rng = SimRng::stream(seed, &format!("trace.app.{id}"));
            let u = rng.unit_f64();
            let kind = if u < cfg.bursty_fraction {
                ArrivalKind::Bursty
            } else if u < cfg.bursty_fraction + cfg.diurnal_fraction {
                ArrivalKind::Diurnal
            } else {
                ArrivalKind::Poisson
            };
            let mut st = AppState {
                rng,
                rate,
                tenant: tenant_of(&cfg, seed, id as u32),
                kind,
                phase_end: SimTime::ZERO,
                on: false,
            };
            let first = st.next_arrival(SimTime::ZERO, &cfg);
            if first <= horizon {
                heap.push(Reverse((first, id as u32)));
            }
            apps.push(st);
        }
        TraceGenerator {
            cfg,
            apps,
            heap,
            horizon,
            emitted: 0,
        }
    }

    /// The arrival kind assigned to `app` at this seed.
    pub fn app_kind(&self, app: u32) -> ArrivalKind {
        self.apps[app as usize].kind
    }

    /// Events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.emitted >= self.cfg.max_events {
            return None;
        }
        let Reverse((at, app)) = self.heap.pop()?;
        let st = &mut self.apps[app as usize];
        let func = st
            .rng
            .zipf(self.cfg.funcs_per_app.max(1) as usize, self.cfg.func_zipf_s)
            as u32;
        let payload_bytes = st
            .rng
            .lognormal_mean_cv(self.cfg.payload_mean_bytes.max(1.0), self.cfg.payload_cv)
            .clamp(64.0, 1024.0 * 1024.0) as u64;
        let next = st.next_arrival(at, &self.cfg);
        if next <= self.horizon {
            self.heap.push(Reverse((next, app)));
        }
        self.emitted += 1;
        Some(TraceEvent {
            at,
            app,
            func,
            payload_bytes,
            tenant: st.tenant,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_time_ordered_and_within_horizon() {
        let cfg = TraceConfig::small();
        let horizon = SimTime::ZERO + cfg.duration;
        let mut last = SimTime::ZERO;
        let mut n = 0u64;
        for ev in TraceGenerator::new(cfg, 7) {
            assert!(ev.at >= last, "time went backwards");
            assert!(ev.at <= horizon);
            last = ev.at;
            n += 1;
        }
        // ~36/s over 300 s ≈ 10.8k events.
        assert!(n > 8_000 && n < 14_000, "got {n} events");
    }

    #[test]
    fn max_events_caps_the_stream() {
        let mut cfg = TraceConfig::small();
        cfg.max_events = 100;
        assert_eq!(TraceGenerator::new(cfg, 1).count(), 100);
    }

    #[test]
    fn rates_are_strictly_zipf_monotone() {
        let cfg = TraceConfig::small();
        let rates = cfg.app_rates();
        assert!((rates.iter().sum::<f64>() - cfg.total_rate).abs() < 1e-9);
        for pair in rates.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn tenant_assignment_is_stable_and_head_heavy() {
        let cfg = TraceConfig::small();
        for app in 0..cfg.apps {
            assert_eq!(tenant_of(&cfg, 9, app), tenant_of(&cfg, 9, app));
            assert!(tenant_of(&cfg, 9, app) < cfg.tenants);
        }
        let rates = tenant_rates(&cfg, 9);
        assert_eq!(rates.len(), cfg.tenants as usize);
        assert!((rates.iter().sum::<f64>() - cfg.total_rate).abs() < 1e-9);
    }

    #[test]
    fn single_tenant_draws_nothing_and_owns_everything() {
        let mut cfg = TraceConfig::small();
        cfg.tenants = 1;
        for app in 0..cfg.apps {
            assert_eq!(tenant_of(&cfg, 3, app), 0);
        }
        assert!(TraceGenerator::new(cfg, 3).all(|ev| ev.tenant == 0));
    }

    #[test]
    fn function_profiles_are_stable() {
        let cfg = TraceConfig::small();
        let a = function_profile(&cfg, 42, 3, 1);
        let b = function_profile(&cfg, 42, 3, 1);
        assert_eq!(a, b);
        let (lo, hi) = cfg.exec_mean_ms;
        let ms = a.mean_exec.as_secs_f64() * 1e3;
        assert!(ms >= lo && ms <= hi);
        assert!(cfg.memory_choices_mb.contains(&a.memory_mb));
    }
}
