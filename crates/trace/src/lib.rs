//! # faasim-trace
//!
//! Trace-driven workload replay for the simulated serverless platform:
//! the scenario engine the paper's argument needs — platforms must be
//! judged under production workload *shapes* (heavy-tailed popularity,
//! bursts, diurnal cycles), not hand-written toy sequences.
//!
//! Three pieces:
//!
//! - [`TraceGenerator`] ([`workload`]): a lazy, seed-deterministic
//!   iterator of `(time, app, func, payload-size)` events in the style of
//!   the Azure Functions traces — Zipf app popularity, per-app
//!   Poisson/bursty/diurnal arrivals, per-function execution-time and
//!   memory profiles. A million-invocation trace costs `O(apps)` memory.
//! - [`QuantileSketch`] ([`sketch`]): a deterministic streaming quantile
//!   sketch (log-bucketed, DDSketch-style) with a guaranteed relative
//!   error bound — p99.9 over millions of samples in a few KB.
//! - [`replay`] ([`ReplayReport`]): streams a trace through the platform
//!   (optionally via the resilience layer under a chaos plan) and reports
//!   cold-start rate, latency p50/p95/p99/p99.9, per-app fairness spread,
//!   container packing density, and $/hr from the pricing ledger.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod replay;
mod sketch;
mod workload;

pub use replay::{
    replay, replay_with, tenant_priority, GatewaySpec, ReplayConfig, ReplayOutcome, ReplayReport,
};
pub use sketch::QuantileSketch;
pub use workload::{
    function_name, function_profile, tenant_of, tenant_rates, ArrivalKind, FunctionProfile,
    TraceConfig, TraceEvent, TraceGenerator,
};
