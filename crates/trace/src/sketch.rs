//! A deterministic streaming quantile sketch with bounded *relative*
//! error, in the spirit of DDSketch: values are counted in logarithmic
//! buckets `(γ^(i-1), γ^i]` with `γ = (1+α)/(1-α)`, so any quantile
//! estimate is within `α` of the true sample value — regardless of how
//! many samples stream through — while memory stays bounded by the
//! *dynamic range* of the data, not its volume.
//!
//! Unlike randomized sketches (KLL, sampling reservoirs), bucketing is a
//! pure function of the value, so identical input streams produce
//! identical sketches in any order-preserving replay — exactly the
//! property the seed-sweep determinism harness asserts.

use std::collections::BTreeMap;

/// Smallest value tracked with relative error; anything below (including
/// zero) lands in a dedicated zero bucket reported as `0.0`.
const MIN_TRACKED: f64 = 1e-9;

/// Streaming quantile sketch with a guaranteed relative error bound.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    gamma: f64,
    ln_gamma: f64,
    /// Log-bucket counts, keyed by `ceil(ln(v) / ln γ)`. A `BTreeMap`
    /// keeps iteration (and therefore quantile walks and `Debug` output)
    /// deterministic.
    buckets: BTreeMap<i32, u64>,
    zeros: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// A sketch whose quantile estimates are within `alpha` relative
    /// error (`0 < alpha < 1`) of the true sample values.
    pub fn new(alpha: f64) -> QuantileSketch {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            buckets: BTreeMap::new(),
            zeros: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default 1% relative-error sketch used by the replay harness.
    pub fn with_default_error() -> QuantileSketch {
        QuantileSketch::new(0.01)
    }

    /// The configured relative error bound `α`.
    pub fn relative_error(&self) -> f64 {
        self.alpha
    }

    /// Record one (non-negative) sample.
    pub fn insert(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < MIN_TRACKED {
            self.zeros += 1;
        } else {
            let idx = (v.ln() / self.ln_gamma).ceil() as i32;
            *self.buckets.entry(idx).or_insert(0) += 1;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (exact, not sketched).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all samples (exact, not sketched).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample seen (exact), `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen (exact), `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Number of live buckets — the sketch's memory footprint, bounded by
    /// the data's dynamic range, not the sample count.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len() + usize::from(self.zeros > 0)
    }

    /// Estimate the `q`-quantile using the same nearest-rank convention
    /// as [`faasim_simcore::Histogram`], so differential tests compare
    /// like with like. The estimate is within `α` relative error of the
    /// sample an exact sorted-vector lookup would return.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count - 1) as f64 * q).round() as u64;
        let mut cum = self.zeros;
        if target < cum {
            return 0.0;
        }
        for (&idx, &n) in &self.buckets {
            cum += n;
            if target < cum {
                // Harmonic midpoint of (γ^(i-1), γ^i]: relative error to
                // any value in the bucket is at most (γ-1)/(γ+1) = α.
                return 2.0 * self.gamma.powi(idx) / (self.gamma + 1.0);
            }
        }
        self.max()
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile estimate.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Fold another sketch into this one.
    ///
    /// # Panics
    /// Panics if the two sketches were built with different `α`.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different error bounds"
        );
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_is_zero() {
        let s = QuantileSketch::with_default_error();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_value_within_bound() {
        let mut s = QuantileSketch::new(0.01);
        s.insert(0.302);
        let est = s.p50();
        assert!((est - 0.302).abs() <= 0.01 * 0.302 + 1e-12, "est {est}");
    }

    #[test]
    fn uniform_ramp_quantiles_within_bound() {
        let mut s = QuantileSketch::new(0.01);
        let mut exact: Vec<f64> = Vec::new();
        for i in 1..=10_000u64 {
            let v = i as f64 / 1000.0;
            s.insert(v);
            exact.push(v);
        }
        exact.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let idx = ((exact.len() - 1) as f64 * q).round() as usize;
            let truth = exact[idx];
            let est = s.quantile(q);
            assert!(
                (est - truth).abs() <= 0.01 * truth + 1e-12,
                "q={q}: est {est} vs exact {truth}"
            );
        }
    }

    #[test]
    fn zeros_are_exact() {
        let mut s = QuantileSketch::new(0.05);
        for _ in 0..10 {
            s.insert(0.0);
        }
        s.insert(5.0);
        assert_eq!(s.p50(), 0.0);
        let top = s.quantile(1.0);
        assert!((top - 5.0).abs() <= 0.05 * 5.0, "top {top}");
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut a = QuantileSketch::new(0.02);
        let mut b = QuantileSketch::new(0.02);
        let mut whole = QuantileSketch::new(0.02);
        for i in 1..=1000u64 {
            let v = (i as f64).sqrt();
            whole.insert(v);
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.1, 0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn memory_stays_bounded() {
        let mut s = QuantileSketch::new(0.01);
        for i in 0..1_000_000u64 {
            // Six decades of dynamic range.
            s.insert(1e-3 + (i % 997) as f64);
        }
        assert!(s.bucket_count() < 2000, "buckets {}", s.bucket_count());
    }
}
