//! The prediction-serving workload from §3.1's second case study: a
//! document classifier that marks each word "dirty" or not against a
//! blacklist and rewrites the document with dirty words replaced by
//! punctuation — "our model in this experiment is a simple blacklist of
//! dirty words".

use std::collections::HashSet;

/// The blacklist "model".
#[derive(Clone, Debug)]
pub struct DirtyWordModel {
    blacklist: HashSet<String>,
}

/// Result of censoring one document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Censored {
    /// The rewritten document.
    pub text: String,
    /// How many words were replaced.
    pub dirty_count: usize,
    /// Total words inspected.
    pub word_count: usize,
}

impl DirtyWordModel {
    /// Build from a word list (case-insensitive).
    pub fn new<I, S>(words: I) -> DirtyWordModel
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        DirtyWordModel {
            blacklist: words
                .into_iter()
                .map(|w| w.as_ref().to_ascii_lowercase())
                .collect(),
        }
    }

    /// A deterministic synthetic blacklist of `n` words, for workloads.
    pub fn synthetic(n: usize) -> DirtyWordModel {
        DirtyWordModel::new((0..n).map(|i| format!("dirty{i}")))
    }

    /// Number of blacklisted words.
    pub fn len(&self) -> usize {
        self.blacklist.len()
    }

    /// True when the blacklist is empty.
    pub fn is_empty(&self) -> bool {
        self.blacklist.is_empty()
    }

    /// Serialized size of the model in bytes (what a Lambda would fetch
    /// from the object store on every invocation in the unoptimized
    /// deployment).
    pub fn wire_bytes(&self) -> u64 {
        self.blacklist.iter().map(|w| w.len() as u64 + 1).sum()
    }

    /// Classify one word.
    pub fn is_dirty(&self, word: &str) -> bool {
        self.blacklist.contains(&word.to_ascii_lowercase())
    }

    /// Censor a document: dirty words are replaced by punctuation marks of
    /// the same length.
    pub fn censor(&self, text: &str) -> Censored {
        let mut out = String::with_capacity(text.len());
        let mut dirty = 0usize;
        let mut words = 0usize;
        for (i, token) in text.split(' ').enumerate() {
            if i > 0 {
                out.push(' ');
            }
            if token.is_empty() {
                continue;
            }
            words += 1;
            let core: String = token
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect();
            if !core.is_empty() && self.is_dirty(&core) {
                dirty += 1;
                for c in token.chars() {
                    out.push(if c.is_ascii_alphanumeric() { '*' } else { c });
                }
            } else {
                out.push_str(token);
            }
        }
        Censored {
            text: out,
            dirty_count: dirty,
            word_count: words,
        }
    }

    /// Censor a batch of documents (the unit of work per SQS batch).
    pub fn censor_batch<'a>(&self, docs: impl IntoIterator<Item = &'a str>) -> Vec<Censored> {
        docs.into_iter().map(|d| self.censor(d)).collect()
    }
}

/// Deterministic synthetic document generator for the serving workload.
pub fn synthetic_document(blacklist_size: usize, words: usize, seed: u64) -> String {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let mut out = Vec::with_capacity(words);
    for _ in 0..words {
        let r = next();
        if r % 10 == 0 && blacklist_size > 0 {
            out.push(format!("dirty{}", r as usize % blacklist_size));
        } else {
            out.push(format!("clean{}", r % 5000));
        }
    }
    out.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn censors_dirty_words_preserving_shape() {
        let model = DirtyWordModel::new(["darn", "heck"]);
        let out = model.censor("well darn that Heck-ish thing");
        assert_eq!(out.text, "well **** that Heck-ish thing");
        assert_eq!(out.dirty_count, 1);
        assert_eq!(out.word_count, 5);
    }

    #[test]
    fn punctuation_inside_dirty_word_is_kept() {
        let model = DirtyWordModel::new(["darn"]);
        let out = model.censor("d'arn? no: darn!");
        // "d'arn?" strips to "darn" => censored keeping the apostrophe.
        assert_eq!(out.text, "*'***? no: ****!");
        assert_eq!(out.dirty_count, 2);
    }

    #[test]
    fn case_insensitive() {
        let model = DirtyWordModel::new(["BAD"]);
        assert!(model.is_dirty("bad"));
        assert!(model.is_dirty("BaD"));
        assert!(!model.is_dirty("good"));
    }

    #[test]
    fn empty_and_clean_documents() {
        let model = DirtyWordModel::synthetic(10);
        let out = model.censor("");
        assert_eq!(out.word_count, 0);
        assert_eq!(out.dirty_count, 0);
        let clean = model.censor("all fine here");
        assert_eq!(clean.text, "all fine here");
        assert_eq!(clean.dirty_count, 0);
    }

    #[test]
    fn synthetic_blacklist_and_documents_interact() {
        let model = DirtyWordModel::synthetic(50);
        assert_eq!(model.len(), 50);
        assert!(!model.is_empty());
        assert!(model.wire_bytes() > 0);
        let doc = synthetic_document(50, 200, 9);
        let out = model.censor(&doc);
        assert_eq!(out.word_count, 200);
        // ~10% of tokens are dirty by construction.
        assert!(
            out.dirty_count > 5 && out.dirty_count < 60,
            "dirty {}",
            out.dirty_count
        );
    }

    #[test]
    fn synthetic_document_is_deterministic() {
        assert_eq!(synthetic_document(10, 50, 4), synthetic_document(10, 50, 4));
        assert_ne!(synthetic_document(10, 50, 4), synthetic_document(10, 50, 5));
    }

    #[test]
    fn batch_matches_singles() {
        let model = DirtyWordModel::synthetic(5);
        let docs = ["dirty0 x", "clean only"];
        let batch = model.censor_batch(docs);
        assert_eq!(batch[0], model.censor(docs[0]));
        assert_eq!(batch[1], model.censor(docs[1]));
    }
}
