//! Sparse feature vectors for bag-of-words inputs.

/// A sparse vector: parallel index/value arrays, indices strictly
/// increasing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseVec {
    /// Feature indices, ascending.
    pub indices: Vec<u32>,
    /// Matching values.
    pub values: Vec<f32>,
}

impl SparseVec {
    /// An empty vector.
    pub fn new() -> SparseVec {
        SparseVec::default()
    }

    /// Build from `(index, value)` pairs; pairs with the same index are
    /// summed, zeros dropped.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> SparseVec {
        pairs.sort_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values: Vec<f32> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if let Some(&last) = indices.last() {
                if last == i {
                    *values.last_mut().expect("parallel arrays") += v;
                    continue;
                }
            }
            indices.push(i);
            values.push(v);
        }
        // Drop exact zeros created by cancellation.
        let mut out_i = Vec::with_capacity(indices.len());
        let mut out_v = Vec::with_capacity(values.len());
        for (i, v) in indices.into_iter().zip(values) {
            if v != 0.0 {
                out_i.push(i);
                out_v.push(v);
            }
        }
        SparseVec {
            indices: out_i,
            values: out_v,
        }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.values.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Scale values in place so the L2 norm is 1 (no-op on zero vectors).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for v in &mut self.values {
                *v /= n;
            }
        }
    }

    /// Dot product with a dense slice.
    pub fn dot_dense(&self, dense: &[f32]) -> f32 {
        self.indices
            .iter()
            .zip(self.values.iter())
            .map(|(&i, &v)| dense[i as usize] * v)
            .sum()
    }

    /// Approximate serialized size in bytes (for modeling transfer costs:
    /// 4-byte index + 4-byte value per entry).
    pub fn wire_bytes(&self) -> u64 {
        (self.nnz() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_merges_and_drops_zeros() {
        let v = SparseVec::from_pairs(vec![(5, 1.0), (2, 2.0), (5, 3.0), (7, 1.0), (7, -1.0)]);
        assert_eq!(v.indices, vec![2, 5]);
        assert_eq!(v.values, vec![2.0, 4.0]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn norm_and_normalize() {
        let mut v = SparseVec::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        assert!((v.norm() - 5.0).abs() < 1e-6);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        let mut zero = SparseVec::new();
        zero.normalize(); // must not divide by zero
        assert_eq!(zero.nnz(), 0);
    }

    #[test]
    fn dot_dense_works() {
        let v = SparseVec::from_pairs(vec![(1, 2.0), (3, -1.0)]);
        let dense = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(v.dot_dense(&dense), 2.0 * 20.0 - 40.0);
    }

    #[test]
    fn wire_bytes_counts_entries() {
        let v = SparseVec::from_pairs(vec![(0, 1.0), (9, 1.0)]);
        assert_eq!(v.wire_bytes(), 16);
    }
}
