//! The Adam optimizer (Kingma & Ba), the optimizer named in the paper's
//! training case study ("Our training program uses the AdamOptimizer with
//! a learning rate of 0.001").

use crate::mlp::{Gradients, Mlp};

/// Adam state for a model.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate (paper: 0.001).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the paper's learning rate and the canonical defaults.
    pub fn paper_defaults(model: &Mlp) -> Adam {
        Adam::new(model, 0.001)
    }

    /// Adam with a custom learning rate.
    pub fn new(model: &Mlp, lr: f32) -> Adam {
        let shapes: Vec<usize> = model
            .layers
            .iter()
            .flat_map(|l| [l.w.len(), l.b.len()])
            .collect();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: shapes.iter().map(|&n| vec![0.0; n]).collect(),
            v: shapes.iter().map(|&n| vec![0.0; n]).collect(),
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update to `model` from `grads`.
    pub fn step(&mut self, model: &mut Mlp, grads: &Gradients) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let mut block = 0usize;
        let m = &mut self.m;
        let v = &mut self.v;
        model.for_each_param_block(grads, |params, g| {
            let mb = &mut m[block];
            let vb = &mut v[block];
            for i in 0..params.len() {
                let gi = g[i];
                mb[i] = b1 * mb[i] + (1.0 - b1) * gi;
                vb[i] = b2 * vb[i] + (1.0 - b2) * gi * gi;
                let m_hat = mb[i] / bc1;
                let v_hat = vb[i] / bc2;
                params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            block += 1;
        });
    }
}

/// A trainer bundling a model and its optimizer state.
#[derive(Clone, Debug)]
pub struct Trainer {
    /// The model being trained.
    pub model: Mlp,
    /// Optimizer state.
    pub opt: Adam,
}

impl Trainer {
    /// The paper's setup: its MLP with Adam at lr 0.001.
    pub fn paper_setup(seed: u64) -> Trainer {
        let model = Mlp::paper_model(seed);
        let opt = Adam::paper_defaults(&model);
        Trainer { model, opt }
    }

    /// Build with explicit dims/lr.
    pub fn new(dims: &[usize], lr: f32, seed: u64) -> Trainer {
        let model = Mlp::new(dims, seed);
        let opt = Adam::new(&model, lr);
        Trainer { model, opt }
    }

    /// One optimization step on a batch; returns the pre-step mean loss.
    pub fn train_batch(&mut self, xs: &[crate::sparse::SparseVec], ys: &[f32]) -> f32 {
        let (loss, grads) = self.model.batch_gradients(xs, ys);
        self.opt.step(&mut self.model, &grads);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseVec;

    fn toy_dataset() -> (Vec<SparseVec>, Vec<f32>) {
        // y = 2*x0 - x1 + 1, a few points.
        let points = [
            ([0.0f32, 0.0], 1.0f32),
            ([1.0, 0.0], 3.0),
            ([0.0, 1.0], 0.0),
            ([1.0, 1.0], 2.0),
            ([0.5, 0.25], 1.75),
            ([-1.0, 0.5], -1.5),
        ];
        let xs = points
            .iter()
            .map(|(x, _)| SparseVec::from_pairs(vec![(0, x[0]), (1, x[1])]))
            .collect();
        let ys = points.iter().map(|&(_, y)| y).collect();
        (xs, ys)
    }

    #[test]
    fn adam_reduces_loss_on_toy_problem() {
        let mut t = Trainer::new(&[2, 8, 8, 1], 0.01, 42);
        let (xs, ys) = toy_dataset();
        let first = t.train_batch(&xs, &ys);
        let mut last = first;
        for _ in 0..500 {
            last = t.train_batch(&xs, &ys);
        }
        assert!(
            last < first * 0.05,
            "loss did not drop enough: {first} -> {last}"
        );
        assert_eq!(t.opt.steps(), 501);
    }

    #[test]
    fn updates_are_finite_even_with_zero_grads() {
        let mut t = Trainer::new(&[2, 4, 1], 0.001, 1);
        // All-zero input => first layer grads zero for weights.
        let xs = vec![SparseVec::new()];
        let ys = vec![0.5];
        for _ in 0..10 {
            t.train_batch(&xs, &ys);
        }
        for layer in &t.model.layers {
            assert!(layer.w.iter().all(|w| w.is_finite()));
            assert!(layer.b.iter().all(|b| b.is_finite()));
        }
    }

    #[test]
    fn paper_setup_shapes() {
        let t = Trainer::paper_setup(3);
        assert_eq!(t.model.param_count(), 68_001);
        assert!((t.opt.lr - 0.001).abs() < 1e-9);
        assert_eq!(t.opt.steps(), 0);
    }

    #[test]
    fn deterministic_training() {
        let (xs, ys) = toy_dataset();
        let run = |seed| {
            let mut t = Trainer::new(&[2, 4, 1], 0.01, seed);
            for _ in 0..50 {
                t.train_batch(&xs, &ys);
            }
            t.model.layers[1].w.clone()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn step_moves_toward_gradient_descent_direction() {
        let mut t = Trainer::new(&[1, 1], 0.1, 2);
        // Single linear unit: pred = w*x + b; force known gradient sign.
        t.model.layers[0].w = vec![0.0];
        t.model.layers[0].b = vec![0.0];
        let xs = vec![SparseVec::from_pairs(vec![(0, 1.0)])];
        let ys = vec![1.0]; // err = -1 => grad_w = -1 => w must increase
        t.train_batch(&xs, &ys);
        assert!(t.model.layers[0].w[0] > 0.0);
        assert!(t.model.layers[0].b[0] > 0.0);
    }
}
