//! # faasim-ml
//!
//! The machine-learning workloads from the paper's §3.1 case studies,
//! implemented for real (not mocked):
//!
//! - [`Mlp`]: the exact architecture from the training case study —
//!   6,787 bag-of-words features → two ReLU hidden layers of 10 → scalar
//!   rating prediction — with sparse-aware forward/backward.
//! - [`Adam`]: the optimizer the paper names, at its learning rate 0.001.
//! - [`BagOfWords`]: the featurization pipeline.
//! - [`ReviewGenerator`]: a deterministic synthetic stand-in for the
//!   90 GB Amazon review corpus (documented substitution; see DESIGN.md).
//! - [`DirtyWordModel`]: the blacklist classifier from the prediction-
//!   serving case study.
//!
//! This crate is pure computation: no simulator dependency, usable on its
//! own. The `faasim` core runs these workloads *on* the simulated cloud.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod adam;
mod classifier;
mod featurize;
mod mlp;
mod reviews;
mod sparse;

pub use adam::{Adam, Trainer};
pub use classifier::{synthetic_document, Censored, DirtyWordModel};
pub use featurize::{tokenize, BagOfWords, PAPER_FEATURES};
pub use mlp::{Dense, Gradients, Mlp, Tape};
pub use reviews::{featurized_bytes, Review, ReviewGenConfig, ReviewGenerator};
pub use sparse::SparseVec;
