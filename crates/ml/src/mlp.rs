//! A dependency-free multi-layer perceptron.
//!
//! This is the model from the paper's §3.1 training case study: "a
//! multi-layer perceptron with two hidden layers, each with 10 neurons and
//! a Relu activation function", over 6,787 bag-of-words features,
//! predicting the average customer rating (a regression head trained with
//! squared error). Inputs are sparse, so the first layer's forward and
//! backward touch only the active features.

use crate::sparse::SparseVec;

/// One dense layer, row-major weights `[out_dim x in_dim]`.
#[derive(Clone, Debug)]
pub struct Dense {
    /// Fan-in.
    pub in_dim: usize,
    /// Fan-out.
    pub out_dim: usize,
    /// Weights, row-major: `w[o * in_dim + i]`.
    pub w: Vec<f32>,
    /// Biases, length `out_dim`.
    pub b: Vec<f32>,
}

impl Dense {
    fn new(in_dim: usize, out_dim: usize, rng: &mut impl FnMut() -> f32) -> Dense {
        // He initialization for ReLU nets.
        let scale = (2.0 / in_dim as f32).sqrt();
        let w = (0..in_dim * out_dim).map(|_| rng() * scale).collect();
        Dense {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
        }
    }

    fn forward_dense(&self, x: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x.iter()) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }

    fn forward_sparse(&self, x: &SparseVec, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.b);
        for (&idx, &val) in x.indices.iter().zip(x.values.iter()) {
            let idx = idx as usize;
            debug_assert!(idx < self.in_dim);
            for (o, acc) in out.iter_mut().enumerate() {
                *acc += self.w[o * self.in_dim + idx] * val;
            }
        }
    }

    /// Number of parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// Activations cached by a forward pass, consumed by backward.
#[derive(Clone, Debug, Default)]
pub struct Tape {
    /// Pre-activation values per layer.
    pre: Vec<Vec<f32>>,
    /// Post-activation values per layer (last layer is linear).
    post: Vec<Vec<f32>>,
}

/// Gradients with the same shapes as the model parameters.
#[derive(Clone, Debug)]
pub struct Gradients {
    /// Per-layer weight gradients.
    pub w: Vec<Vec<f32>>,
    /// Per-layer bias gradients.
    pub b: Vec<Vec<f32>>,
}

impl Gradients {
    /// Zero gradients shaped like `mlp`.
    pub fn zeros_like(mlp: &Mlp) -> Gradients {
        Gradients {
            w: mlp.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            b: mlp.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Scale all gradients by `k` (e.g. 1/batch).
    pub fn scale(&mut self, k: f32) {
        for layer in self.w.iter_mut().chain(self.b.iter_mut()) {
            for g in layer {
                *g *= k;
            }
        }
    }
}

/// The multi-layer perceptron: ReLU hidden layers, linear scalar output.
#[derive(Clone, Debug)]
pub struct Mlp {
    /// The layers, input to output.
    pub layers: Vec<Dense>,
}

impl Mlp {
    /// Build an MLP with the given layer widths, e.g. `[6787, 10, 10, 1]`
    /// for the paper's model. Initialization is deterministic in `seed`.
    pub fn new(dims: &[usize], seed: u64) -> Mlp {
        assert!(dims.len() >= 2, "need at least input and output dims");
        // xorshift64* — deterministic, no external dependency needed here.
        let mut state = seed.wrapping_mul(2685821657736338717).max(1);
        let mut next_f32 = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545F4914F6CDD1D);
            // Map to roughly N(0,1) via sum of uniforms (Irwin–Hall, n=4).
            let mut acc = 0.0f32;
            let mut b = bits;
            for _ in 0..4 {
                acc += ((b & 0xFFFF) as f32 / 65536.0) - 0.5;
                b >>= 16;
            }
            acc * (12.0f32 / 4.0).sqrt()
        };
        let layers = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut next_f32))
            .collect();
        Mlp { layers }
    }

    /// The paper's training model: 6,787 features → 10 → 10 → 1.
    pub fn paper_model(seed: u64) -> Mlp {
        Mlp::new(&[6787, 10, 10, 1], seed)
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Forward pass on a sparse input; returns the scalar prediction and
    /// the tape needed for backward.
    pub fn forward(&self, x: &SparseVec) -> (f32, Tape) {
        let mut tape = Tape::default();
        let mut cur: Vec<f32> = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut pre = Vec::new();
            if li == 0 {
                layer.forward_sparse(x, &mut pre);
            } else {
                layer.forward_dense(&cur, &mut pre);
            }
            let last = li == self.layers.len() - 1;
            let post: Vec<f32> = if last {
                pre.clone()
            } else {
                pre.iter().map(|&v| v.max(0.0)).collect()
            };
            cur = post.clone();
            tape.pre.push(pre);
            tape.post.push(post);
        }
        (cur[0], tape)
    }

    /// Prediction without keeping the tape.
    pub fn predict(&self, x: &SparseVec) -> f32 {
        self.forward(x).0
    }

    /// Accumulate gradients of the squared-error loss `(pred - y)^2 / 2`
    /// for one example into `grads`. Returns the loss.
    pub fn backward(
        &self,
        x: &SparseVec,
        y: f32,
        tape: &Tape,
        grads: &mut Gradients,
    ) -> f32 {
        let n_layers = self.layers.len();
        let pred = tape.post[n_layers - 1][0];
        let err = pred - y;
        let loss = 0.5 * err * err;

        // delta starts at the output and propagates backwards.
        let mut delta: Vec<f32> = vec![err];
        for li in (0..n_layers).rev() {
            let layer = &self.layers[li];
            // ReLU derivative for hidden layers (output layer is linear).
            if li != n_layers - 1 {
                for (d, &pre) in delta.iter_mut().zip(tape.pre[li].iter()) {
                    if pre <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            // Bias grads.
            for (g, &d) in grads.b[li].iter_mut().zip(delta.iter()) {
                *g += d;
            }
            // Weight grads and input delta.
            if li == 0 {
                for (&idx, &val) in x.indices.iter().zip(x.values.iter()) {
                    let idx = idx as usize;
                    for (o, &d) in delta.iter().enumerate() {
                        grads.w[0][o * layer.in_dim + idx] += d * val;
                    }
                }
            } else {
                let input = &tape.post[li - 1];
                for (o, &d) in delta.iter().enumerate() {
                    let row = &mut grads.w[li][o * layer.in_dim..(o + 1) * layer.in_dim];
                    for (g, &xi) in row.iter_mut().zip(input.iter()) {
                        *g += d * xi;
                    }
                }
                // Propagate delta to the previous layer.
                let mut prev_delta = vec![0.0f32; layer.in_dim];
                for (o, &d) in delta.iter().enumerate() {
                    let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                    for (pd, &w) in prev_delta.iter_mut().zip(row.iter()) {
                        *pd += d * w;
                    }
                }
                delta = prev_delta;
            }
        }
        loss
    }

    /// Mean squared-error-style loss and accumulated gradients over a batch.
    /// Gradients are averaged over the batch.
    pub fn batch_gradients(&self, xs: &[SparseVec], ys: &[f32]) -> (f32, Gradients) {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "empty batch");
        let mut grads = Gradients::zeros_like(self);
        let mut total = 0.0;
        for (x, &y) in xs.iter().zip(ys.iter()) {
            let (_, tape) = self.forward(x);
            total += self.backward(x, y, &tape, &mut grads);
        }
        let n = xs.len() as f32;
        grads.scale(1.0 / n);
        (total / n, grads)
    }

    /// Root-mean-squared error over a dataset.
    pub fn rmse(&self, xs: &[SparseVec], ys: &[f32]) -> f32 {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return 0.0;
        }
        let sq: f32 = xs
            .iter()
            .zip(ys.iter())
            .map(|(x, &y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum();
        (sq / xs.len() as f32).sqrt()
    }

    /// Visit all parameters and matching gradients as flat slices, layer by
    /// layer — the optimizer's view of the model.
    pub fn for_each_param_block(
        &mut self,
        grads: &Gradients,
        mut f: impl FnMut(&mut [f32], &[f32]),
    ) {
        for (li, layer) in self.layers.iter_mut().enumerate() {
            f(&mut layer.w, &grads.w[li]);
            f(&mut layer.b, &grads.b[li]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_input(vals: &[f32]) -> SparseVec {
        SparseVec {
            indices: (0..vals.len() as u32).collect(),
            values: vals.to_vec(),
        }
    }

    #[test]
    fn paper_model_shape() {
        let m = Mlp::paper_model(1);
        assert_eq!(m.layers.len(), 3);
        assert_eq!(m.layers[0].in_dim, 6787);
        assert_eq!(m.layers[0].out_dim, 10);
        assert_eq!(m.layers[2].out_dim, 1);
        // 6787*10 + 10 + 10*10 + 10 + 10*1 + 1 = 68,001.
        assert_eq!(m.param_count(), 68_001);
    }

    #[test]
    fn init_is_deterministic() {
        let a = Mlp::paper_model(7);
        let b = Mlp::paper_model(7);
        let c = Mlp::paper_model(8);
        assert_eq!(a.layers[0].w, b.layers[0].w);
        assert_ne!(a.layers[0].w, c.layers[0].w);
    }

    #[test]
    fn forward_matches_hand_computation() {
        // 2 -> 2 -> 1, hand-set weights.
        let mut m = Mlp::new(&[2, 2, 1], 1);
        m.layers[0].w = vec![1.0, -1.0, 0.5, 0.5]; // rows: [1,-1], [0.5,0.5]
        m.layers[0].b = vec![0.0, 1.0];
        m.layers[1].w = vec![2.0, -3.0];
        m.layers[1].b = vec![0.25];
        let x = dense_input(&[2.0, 1.0]);
        // pre1 = [2-1, 1+1+1] = [1, 3] (wait: 0.5*2+0.5*1+1 = 2.5)
        // pre1 = [1.0, 2.5]; relu same; out = 2*1 - 3*2.5 + 0.25 = -5.25.
        let (pred, _) = m.forward(&x);
        assert!((pred - (-5.25)).abs() < 1e-6, "pred {pred}");
    }

    #[test]
    fn relu_kills_negative_units() {
        let mut m = Mlp::new(&[1, 1, 1], 1);
        m.layers[0].w = vec![-1.0];
        m.layers[0].b = vec![0.0];
        m.layers[1].w = vec![5.0];
        m.layers[1].b = vec![0.0];
        let (pred, _) = m.forward(&dense_input(&[3.0]));
        assert_eq!(pred, 0.0);
    }

    #[test]
    fn sparse_and_dense_forward_agree() {
        let m = Mlp::new(&[10, 4, 1], 3);
        // Sparse vector with a few active indices.
        let sparse = SparseVec {
            indices: vec![1, 4, 7],
            values: vec![0.5, -1.0, 2.0],
        };
        let mut dense = vec![0.0f32; 10];
        dense[1] = 0.5;
        dense[4] = -1.0;
        dense[7] = 2.0;
        let a = m.predict(&sparse);
        let b = m.predict(&dense_input(&dense));
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut m = Mlp::new(&[3, 4, 2, 1], 5);
        let x = SparseVec {
            indices: vec![0, 2],
            values: vec![1.5, -0.5],
        };
        let y = 2.0f32;
        let (_, tape) = m.forward(&x);
        let mut grads = Gradients::zeros_like(&m);
        m.backward(&x, y, &tape, &mut grads);

        let eps = 1e-3f32;
        // Check a sample of weights in every layer.
        for li in 0..m.layers.len() {
            let n = m.layers[li].w.len();
            for &wi in &[0usize, n / 2, n - 1] {
                let orig = m.layers[li].w[wi];
                m.layers[li].w[wi] = orig + eps;
                let (p_plus, _) = m.forward(&x);
                m.layers[li].w[wi] = orig - eps;
                let (p_minus, _) = m.forward(&x);
                m.layers[li].w[wi] = orig;
                let l_plus = 0.5 * (p_plus - y) * (p_plus - y);
                let l_minus = 0.5 * (p_minus - y) * (p_minus - y);
                let numeric = (l_plus - l_minus) / (2.0 * eps);
                let analytic = grads.w[li][wi];
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "layer {li} w[{wi}]: numeric {numeric} vs analytic {analytic}"
                );
            }
            // And one bias per layer.
            let orig = m.layers[li].b[0];
            m.layers[li].b[0] = orig + eps;
            let (p_plus, _) = m.forward(&x);
            m.layers[li].b[0] = orig - eps;
            let (p_minus, _) = m.forward(&x);
            m.layers[li].b[0] = orig;
            let numeric = (0.5 * (p_plus - y) * (p_plus - y)
                - 0.5 * (p_minus - y) * (p_minus - y))
                / (2.0 * eps);
            let analytic = grads.b[li][0];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "layer {li} b[0]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn batch_gradients_average() {
        let m = Mlp::new(&[2, 2, 1], 9);
        let xs = vec![dense_input(&[1.0, 0.0]), dense_input(&[0.0, 1.0])];
        let ys = vec![1.0, -1.0];
        let (loss, grads) = m.batch_gradients(&xs, &ys);
        assert!(loss.is_finite());
        // Averaged gradient equals mean of per-example gradients.
        let mut g0 = Gradients::zeros_like(&m);
        let (_, t0) = m.forward(&xs[0]);
        m.backward(&xs[0], ys[0], &t0, &mut g0);
        let mut g1 = Gradients::zeros_like(&m);
        let (_, t1) = m.forward(&xs[1]);
        m.backward(&xs[1], ys[1], &t1, &mut g1);
        for (i, g) in grads.w[0].iter().enumerate() {
            let want = (g0.w[0][i] + g1.w[0][i]) / 2.0;
            assert!((g - want).abs() < 1e-6);
        }
    }

    #[test]
    fn rmse_zero_on_perfect_fit() {
        let mut m = Mlp::new(&[1, 1, 1], 1);
        m.layers[0].w = vec![1.0];
        m.layers[0].b = vec![0.0];
        m.layers[1].w = vec![1.0];
        m.layers[1].b = vec![0.0];
        let xs = vec![dense_input(&[2.0])];
        let ys = vec![2.0];
        assert_eq!(m.rmse(&xs, &ys), 0.0);
        assert_eq!(m.rmse(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let m = Mlp::new(&[2, 1], 1);
        m.batch_gradients(&[], &[]);
    }
}
