//! Bag-of-words featurization.
//!
//! The paper featurizes Amazon product reviews "with a bag-of-words model,
//! resulting in 6,787 features". We reproduce that pipeline: tokenize,
//! build a vocabulary of the most frequent tokens (capped at the feature
//! budget), then map documents to sparse count vectors, L2-normalized.

use std::collections::HashMap;

use crate::sparse::SparseVec;

/// The paper's feature count.
pub const PAPER_FEATURES: usize = 6_787;

/// Lowercase alphabetic tokenization.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// A fitted bag-of-words vocabulary.
#[derive(Clone, Debug)]
pub struct BagOfWords {
    vocab: HashMap<String, u32>,
    dim: usize,
}

impl BagOfWords {
    /// Fit a vocabulary of at most `max_features` tokens from `documents`,
    /// keeping the most frequent (ties broken lexicographically so fitting
    /// is deterministic).
    pub fn fit<'a>(documents: impl IntoIterator<Item = &'a str>, max_features: usize) -> BagOfWords {
        let mut counts: HashMap<String, u64> = HashMap::new();
        for doc in documents {
            for tok in tokenize(doc) {
                *counts.entry(tok).or_default() += 1;
            }
        }
        let mut by_freq: Vec<(String, u64)> = counts.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        by_freq.truncate(max_features);
        let vocab: HashMap<String, u32> = by_freq
            .into_iter()
            .enumerate()
            .map(|(i, (tok, _))| (tok, i as u32))
            .collect();
        let dim = vocab.len();
        BagOfWords { vocab, dim }
    }

    /// Fit with the paper's 6,787-feature budget.
    pub fn fit_paper<'a>(documents: impl IntoIterator<Item = &'a str>) -> BagOfWords {
        BagOfWords::fit(documents, PAPER_FEATURES)
    }

    /// Vocabulary size (= feature dimension).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Index of a token, if in vocabulary.
    pub fn index_of(&self, token: &str) -> Option<u32> {
        self.vocab.get(token).copied()
    }

    /// Featurize one document into a normalized sparse count vector.
    /// Out-of-vocabulary tokens are dropped.
    pub fn transform(&self, text: &str) -> SparseVec {
        let pairs: Vec<(u32, f32)> = tokenize(text)
            .into_iter()
            .filter_map(|tok| self.vocab.get(&tok).map(|&i| (i, 1.0f32)))
            .collect();
        let mut v = SparseVec::from_pairs(pairs);
        v.normalize();
        v
    }

    /// Featurize a batch.
    pub fn transform_batch<'a>(
        &self,
        documents: impl IntoIterator<Item = &'a str>,
    ) -> Vec<SparseVec> {
        documents.into_iter().map(|d| self.transform(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("Great product!! Works well..."),
            vec!["great", "product", "works", "well"]
        );
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("a-b_c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn fit_keeps_most_frequent() {
        let docs = ["apple apple apple banana banana cherry", "apple banana"];
        let bow = BagOfWords::fit(docs, 2);
        assert_eq!(bow.dim(), 2);
        assert!(bow.index_of("apple").is_some());
        assert!(bow.index_of("banana").is_some());
        assert!(bow.index_of("cherry").is_none());
    }

    #[test]
    fn fit_is_deterministic_under_ties() {
        let docs = ["zeta alpha", "zeta alpha"];
        let a = BagOfWords::fit(docs, 2);
        let b = BagOfWords::fit(docs, 2);
        assert_eq!(a.index_of("alpha"), b.index_of("alpha"));
        assert_eq!(a.index_of("zeta"), b.index_of("zeta"));
        // Lexicographic tiebreak puts alpha first.
        assert_eq!(a.index_of("alpha"), Some(0));
    }

    #[test]
    fn transform_counts_and_normalizes() {
        let docs = ["dog cat", "dog"];
        let bow = BagOfWords::fit(docs, 10);
        let v = bow.transform("dog dog cat unknownword");
        assert_eq!(v.nnz(), 2);
        assert!((v.norm() - 1.0).abs() < 1e-6);
        // dog appears twice, cat once: dog's weight is larger.
        let dog = bow.index_of("dog").unwrap();
        let cat = bow.index_of("cat").unwrap();
        let get = |idx: u32| {
            v.indices
                .iter()
                .position(|&i| i == idx)
                .map(|p| v.values[p])
                .unwrap()
        };
        assert!(get(dog) > get(cat));
    }

    #[test]
    fn oov_document_is_empty() {
        let bow = BagOfWords::fit(["known words here"], 10);
        let v = bow.transform("totally different text");
        assert_eq!(v.nnz(), 0);
    }

    #[test]
    fn transform_batch_matches_singles() {
        let bow = BagOfWords::fit(["a b c"], 10);
        let batch = bow.transform_batch(["a b", "c"]);
        assert_eq!(batch[0], bow.transform("a b"));
        assert_eq!(batch[1], bow.transform("c"));
    }
}
