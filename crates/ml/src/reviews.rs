//! Synthetic Amazon-style product review corpus.
//!
//! The paper trains on the public Amazon product review dataset (90 GB
//! featurized). That dataset cannot ship with this reproduction, so this
//! module generates a statistically similar stand-in: Zipf-distributed
//! vocabulary, a sentiment lexicon whose presence drives the star rating,
//! and configurable document lengths. The generator is deterministic in
//! its seed, and its *learnability* matters more than its realism: the
//! paper's experiment only needs "a corpus on which the MLP's loss falls".

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// One synthetic review.
#[derive(Clone, Debug, PartialEq)]
pub struct Review {
    /// Review text (space-joined tokens).
    pub text: String,
    /// Star rating in `[1.0, 5.0]`.
    pub rating: f32,
}

/// Corpus generator configuration.
#[derive(Clone, Debug)]
pub struct ReviewGenConfig {
    /// Vocabulary size (neutral filler words).
    pub vocab_size: usize,
    /// Number of positive sentiment words.
    pub positive_words: usize,
    /// Number of negative sentiment words.
    pub negative_words: usize,
    /// Tokens per review (min, max).
    pub doc_len: (usize, usize),
    /// Rating noise standard deviation (stars).
    pub rating_noise: f32,
}

impl Default for ReviewGenConfig {
    fn default() -> Self {
        ReviewGenConfig {
            vocab_size: 6_000,
            positive_words: 400,
            negative_words: 400,
            doc_len: (20, 120),
            rating_noise: 0.4,
        }
    }
}

/// Deterministic review generator.
#[derive(Clone, Debug)]
pub struct ReviewGenerator {
    cfg: ReviewGenConfig,
    rng: SmallRng,
}

impl ReviewGenerator {
    /// Create a generator with the given seed.
    pub fn new(cfg: ReviewGenConfig, seed: u64) -> ReviewGenerator {
        ReviewGenerator {
            cfg,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn zipf_rank(&mut self, n: usize) -> usize {
        // Simple inverse-power sampling, adequate for corpus shape.
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        let x = (n as f64).powf(u) - 1.0;
        (x as usize).min(n - 1)
    }

    /// Generate one review.
    pub fn generate(&mut self) -> Review {
        let len = self
            .rng
            .random_range(self.cfg.doc_len.0..=self.cfg.doc_len.1.max(self.cfg.doc_len.0));
        // Sentiment of this review in [-1, 1].
        let polarity: f32 = self.rng.random_range(-1.0..1.0f32);
        let mut tokens: Vec<String> = Vec::with_capacity(len);
        let mut sentiment_sum = 0.0f32;
        let mut sentiment_count = 0u32;
        for _ in 0..len {
            let r: f32 = self.rng.random();
            // ~25% of tokens carry sentiment, biased by the polarity.
            if r < 0.25 {
                let positive = self.rng.random::<f32>() < (polarity + 1.0) / 2.0;
                if positive {
                    let w = self.rng.random_range(0..self.cfg.positive_words);
                    tokens.push(format!("good{w}"));
                    sentiment_sum += 1.0;
                } else {
                    let w = self.rng.random_range(0..self.cfg.negative_words);
                    tokens.push(format!("bad{w}"));
                    sentiment_sum -= 1.0;
                }
                sentiment_count += 1;
            } else {
                let w = self.zipf_rank(self.cfg.vocab_size);
                tokens.push(format!("word{w}"));
            }
        }
        let mean_sentiment = if sentiment_count > 0 {
            sentiment_sum / sentiment_count as f32
        } else {
            0.0
        };
        let noise: f32 = {
            // Cheap normal-ish noise: mean of 4 uniforms.
            let mut acc = 0.0f32;
            for _ in 0..4 {
                acc += self.rng.random::<f32>() - 0.5;
            }
            acc * self.cfg.rating_noise * (12.0f32 / 4.0).sqrt()
        };
        let rating = (3.0 + 2.0 * mean_sentiment + noise).clamp(1.0, 5.0);
        Review {
            text: tokens.join(" "),
            rating,
        }
    }

    /// Generate a batch of reviews.
    pub fn generate_batch(&mut self, n: usize) -> Vec<Review> {
        (0..n).map(|_| self.generate()).collect()
    }
}

/// Approximate serialized size of a set of featurized examples, matching
/// the paper's accounting of "100 MB batches" of featurized training data.
/// Each example is its sparse features (8 bytes/entry) plus a 4-byte label.
pub fn featurized_bytes(examples: &[crate::sparse::SparseVec]) -> u64 {
    examples.iter().map(|x| x.wire_bytes() + 4).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::Trainer;
    use crate::featurize::BagOfWords;

    #[test]
    fn generation_is_deterministic() {
        let mut a = ReviewGenerator::new(ReviewGenConfig::default(), 1);
        let mut b = ReviewGenerator::new(ReviewGenConfig::default(), 1);
        let mut c = ReviewGenerator::new(ReviewGenConfig::default(), 2);
        assert_eq!(a.generate_batch(5), b.generate_batch(5));
        assert_ne!(a.generate(), c.generate());
    }

    #[test]
    fn ratings_in_range_and_varied() {
        let mut g = ReviewGenerator::new(ReviewGenConfig::default(), 3);
        let reviews = g.generate_batch(500);
        assert!(reviews.iter().all(|r| (1.0..=5.0).contains(&r.rating)));
        let mean: f32 = reviews.iter().map(|r| r.rating).sum::<f32>() / 500.0;
        assert!((2.0..4.0).contains(&mean), "mean rating {mean}");
        let lows = reviews.iter().filter(|r| r.rating < 2.0).count();
        let highs = reviews.iter().filter(|r| r.rating > 4.0).count();
        assert!(lows > 10 && highs > 10, "lows {lows}, highs {highs}");
    }

    #[test]
    fn doc_lengths_respect_bounds() {
        let cfg = ReviewGenConfig {
            doc_len: (5, 10),
            ..Default::default()
        };
        let mut g = ReviewGenerator::new(cfg, 4);
        for r in g.generate_batch(100) {
            let n = r.text.split(' ').count();
            assert!((5..=10).contains(&n), "len {n}");
        }
    }

    #[test]
    fn corpus_is_learnable_by_paper_model_shape() {
        // End-to-end sanity: featurize a small corpus and check the MLP's
        // training loss falls substantially — the property the paper's
        // case study relies on.
        let mut g = ReviewGenerator::new(ReviewGenConfig::default(), 5);
        let train = g.generate_batch(400);
        let texts: Vec<&str> = train.iter().map(|r| r.text.as_str()).collect();
        let bow = BagOfWords::fit(texts.iter().copied(), 2_000);
        let xs = bow.transform_batch(texts.iter().copied());
        let ys: Vec<f32> = train.iter().map(|r| r.rating).collect();
        let mut trainer = Trainer::new(&[bow.dim(), 10, 10, 1], 0.01, 6);
        let first = trainer.train_batch(&xs, &ys);
        let mut last = first;
        for _ in 0..60 {
            last = trainer.train_batch(&xs, &ys);
        }
        assert!(
            last < first * 0.25,
            "loss did not fall: {first} -> {last}"
        );
    }

    #[test]
    fn featurized_bytes_counts() {
        let v = crate::sparse::SparseVec::from_pairs(vec![(0, 1.0), (2, 1.0)]);
        assert_eq!(featurized_bytes(&[v.clone(), v]), 2 * (16 + 4));
    }
}
