//! Exponential backoff with bounded jitter, plus a generic retry
//! driver with optional per-call timeouts and deadline budgets.
//!
//! The paper's §2 compositions only work because every client retries:
//! SQS is at-least-once, DynamoDB throttles, S3 returns 503 SlowDown.
//! [`RetryPolicy`] is that discipline made explicit — and, because the
//! jitter comes from a named simulation RNG stream, made deterministic.
//! [`RetryPolicy::run_within`] is the budgeted variant: every backoff
//! sleep and per-call timeout is capped so the whole retry loop fits
//! inside a propagated [`Deadline`].

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::rc::Rc;

use faasim_simcore::{Sim, SimDuration, SimRng};

use crate::deadline::Deadline;

/// Why a retried operation ultimately failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetryError<E> {
    /// Every attempt failed transiently; `last` is the final error.
    Exhausted {
        /// Attempts made (equals the policy's `max_attempts`).
        attempts: u32,
        /// The error from the final attempt.
        last: E,
    },
    /// Every attempt failed and the final one hit the per-call timeout.
    TimedOut {
        /// Attempts made.
        attempts: u32,
    },
    /// The deadline budget ran out before an attempt could succeed.
    /// Only produced by [`RetryPolicy::run_within`] and the budgeted
    /// clients built on it.
    DeadlineExceeded {
        /// Attempts made before the budget expired.
        attempts: u32,
    },
    /// A non-transient error: surfaced immediately, never retried.
    Fatal(E),
}

impl<E> RetryError<E> {
    /// The underlying error when this is [`RetryError::Fatal`].
    pub fn as_fatal(&self) -> Option<&E> {
        match self {
            RetryError::Fatal(e) => Some(e),
            _ => None,
        }
    }

    /// The final underlying error, if one exists (timeouts and expired
    /// deadlines have none).
    pub fn into_inner(self) -> Option<E> {
        match self {
            RetryError::Exhausted { last, .. } | RetryError::Fatal(last) => Some(last),
            RetryError::TimedOut { .. } | RetryError::DeadlineExceeded { .. } => None,
        }
    }

    /// Whether the failure was the deadline budget expiring rather than
    /// the operation itself failing for good.
    pub fn is_deadline(&self) -> bool {
        matches!(self, RetryError::DeadlineExceeded { .. })
    }
}

impl<E: fmt::Display> fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            RetryError::TimedOut { attempts } => {
                write!(f, "gave up after {attempts} attempts: call timed out")
            }
            RetryError::DeadlineExceeded { attempts } => {
                write!(f, "deadline budget expired after {attempts} attempts")
            }
            RetryError::Fatal(e) => write!(f, "fatal (not retried): {e}"),
        }
    }
}

/// Exponential backoff with bounded jitter and optional per-call
/// timeouts.
///
/// Attempt `k` (zero-based) sleeps [`RetryPolicy::delay`]`(k)` before
/// retrying, where the deterministic spine is
/// `backoff(k) = min(cap, base * factor^k)` and jitter scales it by a
/// uniform factor in `[1 - jitter, 1 + jitter]`. With `jitter == 0` no
/// randomness is consumed at all.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: SimDuration,
    /// Multiplier per retry (clamped to ≥ 1, so backoff never shrinks).
    pub factor: f64,
    /// Ceiling on the deterministic backoff spine.
    pub cap: SimDuration,
    /// Jitter fraction in `[0, 1]`: the slept delay is
    /// `backoff * uniform(1 - jitter, 1 + jitter)`.
    pub jitter: f64,
    /// If set, each attempt is raced against this virtual-time deadline
    /// and a late response is treated as a transient failure.
    pub call_timeout: Option<SimDuration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base: SimDuration::from_millis(50),
            factor: 2.0,
            cap: SimDuration::from_secs(10),
            jitter: 0.5,
            call_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — useful as a control.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The deterministic backoff spine for zero-based attempt `k`:
    /// `min(cap, base * factor^k)`. Non-decreasing in `k` and never
    /// above `cap`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let factor = if self.factor.is_finite() {
            self.factor.max(1.0)
        } else {
            1.0
        };
        let exp = attempt.min(i32::MAX as u32) as i32;
        let raw = self.base.as_secs_f64() * factor.powi(exp);
        let capped = raw.min(self.cap.as_secs_f64());
        SimDuration::from_secs_f64(capped)
    }

    /// The actual delay slept before retry `attempt`: the backoff spine
    /// scaled by a uniform factor in `[1 - jitter, 1 + jitter]`. Draws
    /// from `rng` only when `jitter > 0`.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let b = self.backoff(attempt);
        let j = if self.jitter.is_finite() {
            self.jitter.clamp(0.0, 1.0)
        } else {
            0.0
        };
        if j == 0.0 {
            return b;
        }
        let scale = rng.uniform(1.0 - j, 1.0 + j);
        SimDuration::from_secs_f64(b.as_secs_f64() * scale)
    }

    /// Drive `op` to success or final failure. Each call to `op` builds
    /// a fresh attempt future; `is_transient` decides whether an error
    /// is worth retrying. The shared `rng` is only borrowed between
    /// attempts (never across an `.await`), so one stream can serve
    /// many concurrent callers.
    pub async fn run<T, E, Fut>(
        &self,
        sim: &Sim,
        rng: &Rc<RefCell<SimRng>>,
        is_transient: impl Fn(&E) -> bool,
        op: impl FnMut() -> Fut,
    ) -> Result<T, RetryError<E>>
    where
        Fut: Future<Output = Result<T, E>>,
    {
        self.run_within(sim, rng, Deadline::unbounded(), is_transient, op)
            .await
    }

    /// [`RetryPolicy::run`], but every sleep and call fits inside
    /// `deadline`: per-call timeouts are capped at the remaining budget,
    /// and a backoff sleep that would cross the deadline aborts the loop
    /// with [`RetryError::DeadlineExceeded`] instead of sleeping.
    ///
    /// With [`Deadline::unbounded`] this is exactly [`RetryPolicy::run`].
    pub async fn run_within<T, E, Fut>(
        &self,
        sim: &Sim,
        rng: &Rc<RefCell<SimRng>>,
        deadline: Deadline,
        is_transient: impl Fn(&E) -> bool,
        mut op: impl FnMut() -> Fut,
    ) -> Result<T, RetryError<E>>
    where
        Fut: Future<Output = Result<T, E>>,
    {
        let attempts = self.max_attempts.max(1);
        let mut last: Option<RetryError<E>> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let d = self.delay(attempt - 1, &mut rng.borrow_mut());
                if deadline.remaining(sim) <= d {
                    return Err(RetryError::DeadlineExceeded { attempts: attempt });
                }
                sim.sleep(d).await;
            }
            let remaining = deadline.remaining(sim);
            if remaining == SimDuration::ZERO {
                return Err(RetryError::DeadlineExceeded { attempts: attempt });
            }
            // Cap the per-call race at whatever budget is left; an
            // unbounded deadline leaves the policy's own timeout (or
            // none) in charge.
            let limit = match (self.call_timeout, deadline.is_unbounded()) {
                (Some(t), false) => Some(t.min(remaining)),
                (Some(t), true) => Some(t),
                (None, false) => Some(remaining),
                (None, true) => None,
            };
            let outcome = match limit {
                Some(limit) => sim.timeout(limit, op()).await,
                None => Some(op().await),
            };
            match outcome {
                Some(Ok(v)) => return Ok(v),
                Some(Err(e)) if is_transient(&e) => {
                    last = Some(RetryError::Exhausted {
                        attempts: attempt + 1,
                        last: e,
                    });
                }
                Some(Err(e)) => return Err(RetryError::Fatal(e)),
                None if deadline.is_expired(sim) => {
                    return Err(RetryError::DeadlineExceeded {
                        attempts: attempt + 1,
                    });
                }
                None => {
                    last = Some(RetryError::TimedOut {
                        attempts: attempt + 1,
                    });
                }
            }
        }
        Err(last.expect("max_attempts >= 1 guarantees one attempt"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasim_simcore::SimTime;

    fn policy() -> RetryPolicy {
        RetryPolicy::default()
    }

    #[test]
    fn backoff_doubles_until_cap() {
        let p = policy();
        assert_eq!(p.backoff(0), SimDuration::from_millis(50));
        assert_eq!(p.backoff(1), SimDuration::from_millis(100));
        assert_eq!(p.backoff(2), SimDuration::from_millis(200));
        assert_eq!(p.backoff(20), SimDuration::from_secs(10), "capped");
        assert_eq!(p.backoff(60), SimDuration::from_secs(10), "no overflow");
    }

    #[test]
    fn zero_jitter_consumes_no_randomness() {
        let mut p = policy();
        p.jitter = 0.0;
        let mut a = SimRng::from_seed(9);
        let mut b = SimRng::from_seed(9);
        assert_eq!(p.delay(3, &mut a), p.backoff(3));
        // `a` drew nothing, so the streams stay aligned.
        assert_eq!(a.unit_f64(), b.unit_f64());
    }

    #[test]
    fn run_retries_transient_then_succeeds() {
        use std::cell::Cell;
        let sim = Sim::new(1);
        let rng = Rc::new(RefCell::new(sim.rng("retry")));
        let p = policy();
        let tries = Rc::new(Cell::new(0u32));
        let t = tries.clone();
        let sim2 = sim.clone();
        let got: Result<u32, RetryError<&str>> = sim.block_on(async move {
            p.run(&sim2, &rng, |_| true, move || {
                let t = t.clone();
                async move {
                    t.set(t.get() + 1);
                    if t.get() < 3 {
                        Err("transient")
                    } else {
                        Ok(42)
                    }
                }
            })
            .await
        });
        assert_eq!(got, Ok(42));
        assert_eq!(tries.get(), 3);
    }

    #[test]
    fn run_surfaces_fatal_immediately() {
        let sim = Sim::new(1);
        let rng = Rc::new(RefCell::new(sim.rng("retry")));
        let p = policy();
        let sim2 = sim.clone();
        let got: Result<(), RetryError<&str>> = sim.block_on(async move {
            p.run(&sim2, &rng, |_| false, || async { Err("nope") }).await
        });
        assert_eq!(got, Err(RetryError::Fatal("nope")));
    }

    #[test]
    fn run_times_out_slow_calls() {
        let sim = Sim::new(1);
        let rng = Rc::new(RefCell::new(sim.rng("retry")));
        let mut p = policy();
        p.max_attempts = 2;
        p.call_timeout = Some(SimDuration::from_millis(10));
        let sim2 = sim.clone();
        let sim3 = sim.clone();
        let got: Result<(), RetryError<&str>> = sim.block_on(async move {
            p.run(&sim2, &rng, |_| true, move || {
                let sim3 = sim3.clone();
                async move {
                    sim3.sleep(SimDuration::from_secs(1)).await;
                    Ok(())
                }
            })
            .await
        });
        assert_eq!(got, Err(RetryError::TimedOut { attempts: 2 }));
    }

    #[test]
    fn run_within_respects_the_budget() {
        let sim = Sim::new(1);
        let rng = Rc::new(RefCell::new(sim.rng("retry")));
        let mut p = policy();
        p.max_attempts = 100;
        p.jitter = 0.0;
        let sim2 = sim.clone();
        let sim3 = sim.clone();
        let deadline = Deadline::at(SimTime::ZERO + SimDuration::from_secs(2));
        let got: Result<(), RetryError<&str>> = sim.block_on(async move {
            p.run_within(&sim2, &rng, deadline, |_| true, move || {
                let sim3 = sim3.clone();
                async move {
                    sim3.sleep(SimDuration::from_millis(100)).await;
                    Err("flaky")
                }
            })
            .await
        });
        // The loop must end on the budget, not on max_attempts.
        match got {
            Err(RetryError::DeadlineExceeded { attempts }) => {
                assert!(attempts > 0 && attempts < 100, "attempts = {attempts}")
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(sim.now() <= SimTime::ZERO + SimDuration::from_secs(2));
    }

    #[test]
    fn run_within_classifies_budget_expiry_mid_call() {
        let sim = Sim::new(1);
        let rng = Rc::new(RefCell::new(sim.rng("retry")));
        let mut p = policy();
        p.max_attempts = 3;
        let sim2 = sim.clone();
        let sim3 = sim.clone();
        let deadline = Deadline::at(SimTime::ZERO + SimDuration::from_millis(10));
        let got: Result<(), RetryError<&str>> = sim.block_on(async move {
            p.run_within(&sim2, &rng, deadline, |_| true, move || {
                let sim3 = sim3.clone();
                async move {
                    sim3.sleep(SimDuration::from_secs(5)).await;
                    Ok(())
                }
            })
            .await
        });
        assert_eq!(got, Err(RetryError::DeadlineExceeded { attempts: 1 }));
    }

    #[test]
    fn unbounded_run_within_equals_run() {
        let sim = Sim::new(1);
        let rng = Rc::new(RefCell::new(sim.rng("retry")));
        let p = policy();
        let sim2 = sim.clone();
        let got: Result<u32, RetryError<&str>> = sim.block_on(async move {
            p.run_within(&sim2, &rng, Deadline::unbounded(), |_| true, || async {
                Ok(7)
            })
            .await
        });
        assert_eq!(got, Ok(7));
    }
}
