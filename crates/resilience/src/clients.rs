//! Resilient service clients: the raw services wrapped in a
//! [`RetryPolicy`], so experiments can opt into the retry discipline
//! that real serverless applications are forced to adopt.
//!
//! Only *transient* errors (KV throttling, blob 503s, crashed or
//! timed-out invocations, per-call timeouts) are retried; logic errors
//! such as a missing table or a failed conditional write surface
//! immediately as [`RetryError::Fatal`]. Every client also takes
//! deadline-budgeted variants so retry loops cannot outlive the request
//! they serve.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use faasim_blob::{BlobError, BlobStore};
use faasim_faas::{FaasPlatform, FnError, InvokeOutcome};
use faasim_kv::{Consistency, Item, KvError, KvStore};
use faasim_net::Host;
use faasim_payload::Payload;
use faasim_queue::{MessageId, QueueError, QueueService, Receipt, ReceivedMessage};
use faasim_simcore::{Recorder, Sim, SimDuration, SimRng};

use crate::deadline::Deadline;
use crate::retry::{RetryError, RetryPolicy};

/// A [`KvStore`] client that retries transient failures with the given
/// policy. Cheap to clone; clones share the jitter RNG stream.
#[derive(Clone)]
pub struct RetryingKv {
    kv: KvStore,
    sim: Sim,
    policy: RetryPolicy,
    rng: Rc<RefCell<SimRng>>,
    recorder: Recorder,
}

impl RetryingKv {
    /// Wrap `kv`. `label` names the jitter RNG stream, so two clients
    /// with different labels draw independent jitter.
    pub fn new(sim: &Sim, kv: &KvStore, recorder: Recorder, policy: RetryPolicy, label: &str) -> RetryingKv {
        RetryingKv {
            kv: kv.clone(),
            sim: sim.clone(),
            policy,
            rng: Rc::new(RefCell::new(sim.rng(label))),
            recorder,
        }
    }

    /// Retrying unconditional write. Returns the new version.
    pub async fn put(
        &self,
        caller: &Host,
        table: &str,
        key: &str,
        value: Bytes,
    ) -> Result<u64, RetryError<KvError>> {
        self.put_within(caller, table, key, value, Deadline::unbounded())
            .await
    }

    /// [`RetryingKv::put`] inside a deadline budget.
    pub async fn put_within(
        &self,
        caller: &Host,
        table: &str,
        key: &str,
        value: Bytes,
        deadline: Deadline,
    ) -> Result<u64, RetryError<KvError>> {
        let rec = self.recorder.clone();
        self.policy
            .run_within(&self.sim, &self.rng, deadline, KvError::is_transient, || {
                rec.incr("chaos.kv.attempts");
                self.kv.put(caller, table, key, value.clone())
            })
            .await
    }

    /// Retrying read.
    pub async fn get(
        &self,
        caller: &Host,
        table: &str,
        key: &str,
        consistency: Consistency,
    ) -> Result<Item, RetryError<KvError>> {
        self.get_within(caller, table, key, consistency, Deadline::unbounded())
            .await
    }

    /// [`RetryingKv::get`] inside a deadline budget.
    pub async fn get_within(
        &self,
        caller: &Host,
        table: &str,
        key: &str,
        consistency: Consistency,
        deadline: Deadline,
    ) -> Result<Item, RetryError<KvError>> {
        let rec = self.recorder.clone();
        self.policy
            .run_within(&self.sim, &self.rng, deadline, KvError::is_transient, || {
                rec.incr("chaos.kv.attempts");
                self.kv.get(caller, table, key, consistency)
            })
            .await
    }

    /// Retrying delete (idempotent, so retries are safe).
    pub async fn delete(
        &self,
        caller: &Host,
        table: &str,
        key: &str,
    ) -> Result<(), RetryError<KvError>> {
        let rec = self.recorder.clone();
        self.policy
            .run(&self.sim, &self.rng, KvError::is_transient, || {
                rec.incr("chaos.kv.attempts");
                self.kv.delete(caller, table, key)
            })
            .await
    }

    /// The wrapped store, for operations that should not retry.
    pub fn inner(&self) -> &KvStore {
        &self.kv
    }
}

/// A [`BlobStore`] client that retries transient failures.
#[derive(Clone)]
pub struct RetryingBlob {
    blob: BlobStore,
    sim: Sim,
    policy: RetryPolicy,
    rng: Rc<RefCell<SimRng>>,
    recorder: Recorder,
}

impl RetryingBlob {
    /// Wrap `blob`; `label` names the jitter RNG stream.
    pub fn new(
        sim: &Sim,
        blob: &BlobStore,
        recorder: Recorder,
        policy: RetryPolicy,
        label: &str,
    ) -> RetryingBlob {
        RetryingBlob {
            blob: blob.clone(),
            sim: sim.clone(),
            policy,
            rng: Rc::new(RefCell::new(sim.rng(label))),
            recorder,
        }
    }

    /// Retrying object write (PUT is idempotent, so retries are safe).
    pub async fn put(
        &self,
        caller: &Host,
        bucket: &str,
        key: &str,
        data: Bytes,
    ) -> Result<(), RetryError<BlobError>> {
        self.put_payload(caller, bucket, key, Payload::inline(data))
            .await
    }

    /// Retrying write of a (possibly symbolic) [`Payload`].
    pub async fn put_payload(
        &self,
        caller: &Host,
        bucket: &str,
        key: &str,
        data: Payload,
    ) -> Result<(), RetryError<BlobError>> {
        let rec = self.recorder.clone();
        self.policy
            .run(&self.sim, &self.rng, BlobError::is_transient, || {
                rec.incr("chaos.blob.attempts");
                self.blob.put(caller, bucket, key, data.clone())
            })
            .await
    }

    /// Retrying object read.
    pub async fn get(
        &self,
        caller: &Host,
        bucket: &str,
        key: &str,
    ) -> Result<Payload, RetryError<BlobError>> {
        self.get_within(caller, bucket, key, Deadline::unbounded()).await
    }

    /// [`RetryingBlob::get`] inside a deadline budget.
    pub async fn get_within(
        &self,
        caller: &Host,
        bucket: &str,
        key: &str,
        deadline: Deadline,
    ) -> Result<Payload, RetryError<BlobError>> {
        let rec = self.recorder.clone();
        self.policy
            .run_within(&self.sim, &self.rng, deadline, BlobError::is_transient, || {
                rec.incr("chaos.blob.attempts");
                self.blob.get(caller, bucket, key)
            })
            .await
    }

    /// The wrapped store, for operations that should not retry.
    pub fn inner(&self) -> &BlobStore {
        &self.blob
    }
}

/// What happened to a queue delete made through [`RetryingQueue`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DeleteOutcome {
    /// The message was deleted; it will never be redelivered.
    Deleted,
    /// The receipt had gone stale (its visibility timeout elapsed, so
    /// the message was — or will be — redelivered to someone else).
    /// Not an error under at-least-once delivery: the redelivery's
    /// processing must dedup via an idempotency key.
    Stale,
}

/// A [`QueueService`] client with platform-realistic failure handling:
/// stale receipts are a first-class outcome rather than an error, and
/// every operation fits a deadline budget.
///
/// Note what is *not* promised: a send that times out at the caller may
/// still have enqueued (that is how duplicate deliveries happen in the
/// first place). The queue contract stays at-least-once; exactly-once
/// observable effects come from pairing this client with an
/// [`crate::IdempotencyStore`].
#[derive(Clone)]
pub struct RetryingQueue {
    queue: QueueService,
    sim: Sim,
    policy: RetryPolicy,
    rng: Rc<RefCell<SimRng>>,
    recorder: Recorder,
}

impl RetryingQueue {
    /// Wrap `queue`; `label` names the jitter RNG stream.
    pub fn new(
        sim: &Sim,
        queue: &QueueService,
        recorder: Recorder,
        policy: RetryPolicy,
        label: &str,
    ) -> RetryingQueue {
        RetryingQueue {
            queue: queue.clone(),
            sim: sim.clone(),
            policy,
            rng: Rc::new(RefCell::new(sim.rng(label))),
            recorder,
        }
    }

    /// Send one message inside `deadline`.
    pub async fn send(
        &self,
        caller: &Host,
        queue: &str,
        body: &Payload,
        deadline: Deadline,
    ) -> Result<MessageId, RetryError<QueueError>> {
        let rec = self.recorder.clone();
        self.policy
            .run_within(&self.sim, &self.rng, deadline, |_| false, || {
                rec.incr("resil.queue.attempts");
                self.queue.send(caller, queue, body.clone())
            })
            .await
    }

    /// Send up to a batch of messages as one request inside `deadline`.
    pub async fn send_batch(
        &self,
        caller: &Host,
        queue: &str,
        bodies: Vec<Payload>,
        deadline: Deadline,
    ) -> Result<Vec<MessageId>, RetryError<QueueError>> {
        let rec = self.recorder.clone();
        self.policy
            .run_within(&self.sim, &self.rng, deadline, |_| false, || {
                rec.incr("resil.queue.attempts");
                self.queue.send_batch(caller, queue, bodies.clone())
            })
            .await
    }

    /// Receive up to `max` messages, long-polling up to `wait` but never
    /// past `deadline`. An expired deadline yields an empty batch (the
    /// caller's loop condition decides what that means), matching an
    /// empty long poll.
    pub async fn receive(
        &self,
        caller: &Host,
        queue: &str,
        max: usize,
        wait: SimDuration,
        deadline: Deadline,
    ) -> Result<Vec<ReceivedMessage>, RetryError<QueueError>> {
        let budget = deadline.remaining(&self.sim);
        if budget == SimDuration::ZERO {
            return Ok(Vec::new());
        }
        self.recorder.incr("resil.queue.attempts");
        self.queue
            .receive(caller, queue, max, wait.min(budget))
            .await
            .map_err(RetryError::Fatal)
    }

    /// Delete one received message. A stale receipt (visibility timeout
    /// elapsed before the delete landed) is reported as
    /// [`DeleteOutcome::Stale`], not an error: the message will be
    /// redelivered and must be deduplicated downstream.
    pub async fn delete(
        &self,
        caller: &Host,
        receipt: Receipt,
    ) -> Result<DeleteOutcome, RetryError<QueueError>> {
        self.recorder.incr("resil.queue.attempts");
        match self.queue.delete(caller, receipt).await {
            Ok(()) => Ok(DeleteOutcome::Deleted),
            Err(QueueError::InvalidReceipt) => {
                self.recorder.incr("resil.queue.stale_receipts");
                Ok(DeleteOutcome::Stale)
            }
            Err(e) => Err(RetryError::Fatal(e)),
        }
    }

    /// Delete each receipt individually (so one stale receipt cannot
    /// poison a batch). Returns `(deleted, stale)` counts.
    pub async fn delete_all(
        &self,
        caller: &Host,
        receipts: Vec<Receipt>,
    ) -> Result<(usize, usize), RetryError<QueueError>> {
        let mut deleted = 0;
        let mut stale = 0;
        for r in receipts {
            match self.delete(caller, r).await? {
                DeleteOutcome::Deleted => deleted += 1,
                DeleteOutcome::Stale => stale += 1,
            }
        }
        Ok((deleted, stale))
    }

    /// The wrapped service, for operations that should not retry.
    pub fn inner(&self) -> &QueueService {
        &self.queue
    }
}

/// A [`FaasPlatform`] client that retries transient invocation failures
/// (crashed containers, platform timeouts) with backoff, inside a
/// deadline budget — the platform-level at-least-once retry semantics
/// of an async invoke, made explicit on the synchronous path.
///
/// Each attempt runs to completion (an in-flight invocation is never
/// canceled from outside — the function's own timeout bounds it), so a
/// retried invocation may execute the handler more than once. Pair with
/// [`crate::IdempotencyStore`] for exactly-once observable effects.
#[derive(Clone)]
pub struct RetryingInvoker {
    faas: FaasPlatform,
    sim: Sim,
    policy: RetryPolicy,
    rng: Rc<RefCell<SimRng>>,
    recorder: Recorder,
}

impl RetryingInvoker {
    /// Wrap `faas`; `label` names the jitter RNG stream.
    pub fn new(
        sim: &Sim,
        faas: &FaasPlatform,
        recorder: Recorder,
        policy: RetryPolicy,
        label: &str,
    ) -> RetryingInvoker {
        RetryingInvoker {
            faas: faas.clone(),
            sim: sim.clone(),
            policy,
            rng: Rc::new(RefCell::new(sim.rng(label))),
            recorder,
        }
    }

    /// Invoke `func` until it succeeds, exhausts the policy, or runs
    /// out of deadline budget. Returns the successful outcome; the
    /// outcomes of failed attempts are visible only in the ledger and
    /// counters, as in a real platform.
    pub async fn invoke(
        &self,
        func: &str,
        payload: &Payload,
        deadline: Deadline,
    ) -> Result<InvokeOutcome, RetryError<FnError>> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last: Option<RetryError<FnError>> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let d = self.policy.delay(attempt - 1, &mut self.rng.borrow_mut());
                if deadline.remaining(&self.sim) <= d {
                    return Err(RetryError::DeadlineExceeded { attempts: attempt });
                }
                self.sim.sleep(d).await;
            }
            if deadline.is_expired(&self.sim) {
                return Err(RetryError::DeadlineExceeded { attempts: attempt });
            }
            self.recorder.incr("resil.faas.attempts");
            let out = self.faas.invoke(func, payload.clone()).await;
            match &out.result {
                Ok(_) => return Ok(out),
                Err(e) if e.is_transient() => {
                    last = Some(RetryError::Exhausted {
                        attempts: attempt + 1,
                        last: e.clone(),
                    });
                }
                Err(e) => return Err(RetryError::Fatal(e.clone())),
            }
        }
        Err(last.expect("max_attempts >= 1 guarantees one attempt"))
    }

    /// The wrapped platform, for non-retried operations.
    pub fn inner(&self) -> &FaasPlatform {
        &self.faas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasim::{Cloud, CloudProfile};
    use faasim_faas::{FaasFaults, FunctionSpec};
    use faasim_kv::KvFaults;
    use faasim_queue::{QueueConfig, QueueFaults};

    #[test]
    fn retrying_kv_survives_heavy_throttling() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 11);
        cloud.kv.set_faults(KvFaults { throttle_prob: 0.5 });
        cloud.kv.create_table("t");
        let client = RetryingKv::new(
            &cloud.sim,
            &cloud.kv,
            cloud.recorder.clone(),
            RetryPolicy {
                max_attempts: 10,
                ..RetryPolicy::default()
            },
            "chaos.test",
        );
        let host = cloud.client_host();
        let ok = cloud.sim.block_on(async move {
            for i in 0..50u8 {
                client
                    .put(&host, "t", &format!("k{i}"), Bytes::from(vec![i]))
                    .await?;
                client.get(&host, "t", &format!("k{i}"), Consistency::Strong).await?;
            }
            Ok::<(), RetryError<KvError>>(())
        });
        ok.expect("retries should absorb 50% throttling");
        assert!(cloud.recorder.counter("kv.throttled") > 0, "faults fired");
        assert!(
            cloud.recorder.counter("chaos.kv.attempts") > 100,
            "extra attempts were made"
        );
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 11);
        let client = RetryingKv::new(
            &cloud.sim,
            &cloud.kv,
            cloud.recorder.clone(),
            RetryPolicy::default(),
            "chaos.test",
        );
        let host = cloud.client_host();
        let got = cloud.sim.block_on(async move {
            client.get(&host, "missing", "k", Consistency::Strong).await
        });
        assert!(matches!(got, Err(RetryError::Fatal(KvError::NoSuchTable(_)))));
        assert_eq!(cloud.recorder.counter("chaos.kv.attempts"), 1);
    }

    #[test]
    fn kv_deadline_budget_bounds_throttle_storms() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 12);
        cloud.kv.set_faults(KvFaults { throttle_prob: 1.0 });
        cloud.kv.create_table("t");
        let client = RetryingKv::new(
            &cloud.sim,
            &cloud.kv,
            cloud.recorder.clone(),
            RetryPolicy {
                max_attempts: 1_000,
                ..RetryPolicy::default()
            },
            "chaos.test",
        );
        let host = cloud.client_host();
        let sim = cloud.sim.clone();
        let got = cloud.sim.block_on(async move {
            let deadline = Deadline::within(&sim, SimDuration::from_secs(3));
            client
                .get_within(&host, "t", "k", Consistency::Strong, deadline)
                .await
        });
        assert!(
            matches!(got, Err(e) if e.is_deadline()),
            "100% throttling must end on the budget, not 1000 attempts"
        );
    }

    #[test]
    fn stale_receipts_are_an_outcome_not_an_error() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 13);
        cloud.queue.create_queue(
            "q",
            QueueConfig {
                visibility_timeout: SimDuration::from_millis(100),
                ..QueueConfig::default()
            },
        );
        let rq = RetryingQueue::new(
            &cloud.sim,
            &cloud.queue,
            cloud.recorder.clone(),
            RetryPolicy::default(),
            "resil.q.test",
        );
        let host = cloud.client_host();
        let sim = cloud.sim.clone();
        cloud.sim.block_on(async move {
            rq.send(&host, "q", &Payload::inline("m"), Deadline::unbounded())
                .await
                .expect("send");
            let got = rq
                .receive(&host, "q", 1, SimDuration::ZERO, Deadline::unbounded())
                .await
                .expect("receive");
            assert_eq!(got.len(), 1);
            // Outlive the visibility timeout, then try to delete.
            sim.sleep(SimDuration::from_secs(1)).await;
            let outcome = rq
                .delete(&host, got[0].receipt.clone())
                .await
                .expect("delete");
            assert_eq!(outcome, DeleteOutcome::Stale);
        });
        assert_eq!(cloud.recorder.counter("resil.queue.stale_receipts"), 1);
    }

    #[test]
    fn duplicate_sends_surface_as_redeliveries() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 14);
        cloud.queue.set_faults(QueueFaults {
            duplicate_prob: 1.0,
            ..QueueFaults::default()
        });
        cloud
            .queue
            .create_queue("q", QueueConfig::default());
        let rq = RetryingQueue::new(
            &cloud.sim,
            &cloud.queue,
            cloud.recorder.clone(),
            RetryPolicy::default(),
            "resil.q.test",
        );
        let host = cloud.client_host();
        cloud.sim.block_on(async move {
            rq.send(&host, "q", &Payload::inline("m"), Deadline::unbounded())
                .await
                .expect("send");
            // Both copies are there: at-least-once in action.
            assert_eq!(rq.inner().queue_len("q"), 2);
        });
    }

    #[test]
    fn invoker_retries_through_kills() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 15);
        cloud.faas.set_faults(FaasFaults { kill_prob: 0.5 });
        cloud.faas.register(FunctionSpec::new(
            "work",
            512,
            SimDuration::from_secs(30),
            |ctx, _payload| async move {
                ctx.cpu(SimDuration::from_millis(200)).await;
                Ok(Payload::inline("ok"))
            },
        ));
        let invoker = RetryingInvoker::new(
            &cloud.sim,
            &cloud.faas,
            cloud.recorder.clone(),
            RetryPolicy {
                max_attempts: 20,
                ..RetryPolicy::default()
            },
            "resil.faas.test",
        );
        let host_payload = Payload::inline("x");
        let ok = cloud.sim.block_on(async move {
            for _ in 0..10 {
                invoker
                    .invoke("work", &host_payload, Deadline::unbounded())
                    .await?;
            }
            Ok::<(), RetryError<FnError>>(())
        });
        ok.expect("retries should absorb 50% kill probability");
        assert!(
            cloud.recorder.counter("resil.faas.attempts") > 10,
            "some invocations were killed and retried"
        );
    }
}
