//! # faasim-resilience
//!
//! Resilience primitives for applications built on the simulated cloud.
//!
//! The paper's §2 platform contract is hostile to correctness: functions
//! are invoked **at least once**, may be killed and restarted mid-flight,
//! and every service they compose with (S3, DynamoDB, SQS) throttles,
//! 503s, or redelivers. Real serverless applications answer with a small
//! set of disciplines; this crate makes each one an explicit, composable,
//! deterministic primitive:
//!
//! - [`RetryPolicy`] — exponential backoff with bounded jitter and
//!   per-call timeouts, plus [`RetryPolicy::run_within`], the
//!   deadline-budgeted variant that keeps every retry, backoff sleep,
//!   and per-call timeout inside a propagated [`Deadline`].
//! - [`Deadline`] — an absolute virtual-time budget threaded through a
//!   request's whole call tree, and [`hedged`], which races a duplicate
//!   request against a slow primary without overrunning the budget.
//! - [`CircuitBreaker`] — closed → open → half-open, with transitions
//!   driven purely by simulation time and call outcomes (no randomness),
//!   so brownouts shed load instead of retry-storming.
//! - [`IdempotencyStore`] — a KV-backed effect memo keyed by invocation
//!   idempotency keys: at-least-once deliveries and platform retries
//!   collapse to exactly-once *observable* effects.
//! - [`RetryingKv`] / [`RetryingBlob`] / [`RetryingQueue`] /
//!   [`RetryingInvoker`] — service clients wrapped in the retry
//!   discipline, including stale-receipt handling on queue deletes and
//!   platform-level invoke retries.
//!
//! Everything draws randomness only from named simulation RNG streams
//! (and only when jitter is non-zero), so a run under these wrappers is
//! byte-for-byte reproducible from its seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod breaker;
mod clients;
mod deadline;
mod idempotency;
mod invariants;
mod retry;

pub use breaker::{BreakerConfig, BreakerError, BreakerState, CircuitBreaker};
pub use clients::{DeleteOutcome, RetryingBlob, RetryingInvoker, RetryingKv, RetryingQueue};
pub use deadline::{hedged, Deadline};
pub use idempotency::{Effect, IdempotencyStore};
pub use invariants::{ledger_consistent, message_conservation, queue_conservation};
pub use retry::{RetryError, RetryPolicy};
