//! Exactly-once *observable* effects on top of at-least-once delivery.
//!
//! The paper's §2 is blunt: "functions must be written to be
//! idempotent" — the platform may run an invocation twice (queue
//! redelivery, duplicate send, platform retry after a crash) and the
//! application must make the duplicates unobservable. The standard
//! production answer is an idempotency key: each logical request
//! carries a unique key, and its effect is committed under that key
//! with a conditional write. The first committer wins; every other
//! execution reads the committed effect back instead of re-applying it.
//!
//! [`IdempotencyStore`] is that pattern over the simulated KV store.
//! The KV record *is* the observable effect, and `put_if(NotExists)` is
//! atomic in the store, so even an execution killed between computing
//! and committing leaves at most one committed record — the retry
//! either commits first or loses the conditional write and dedups.

use std::cell::RefCell;
use std::future::Future;
use std::rc::Rc;

use faasim_kv::{Condition, Consistency, KvError, KvStore};
use faasim_net::Host;
use faasim_payload::Payload;
use faasim_simcore::{Recorder, Sim, SimRng};

use crate::retry::{RetryError, RetryPolicy};

/// The committed outcome of [`IdempotencyStore::execute`].
#[derive(Clone, Debug)]
pub struct Effect {
    /// The effect value committed under the idempotency key.
    pub value: Payload,
    /// True when this execution deduplicated against a prior commit
    /// (the work either wasn't run, or ran and lost the commit race).
    pub deduped: bool,
}

/// A KV-backed effect memo keyed by idempotency keys. Cheap to clone;
/// clones share the table and the retry jitter stream.
#[derive(Clone)]
pub struct IdempotencyStore {
    kv: KvStore,
    sim: Sim,
    recorder: Recorder,
    policy: RetryPolicy,
    rng: Rc<RefCell<SimRng>>,
    table: String,
}

impl IdempotencyStore {
    /// A store over `table` (created if missing). `label` names the
    /// retry jitter RNG stream; `policy` governs retries of *transient*
    /// KV failures (throttling) on the store's own reads and writes.
    pub fn new(
        sim: &Sim,
        kv: &KvStore,
        recorder: Recorder,
        table: &str,
        policy: RetryPolicy,
        label: &str,
    ) -> IdempotencyStore {
        kv.create_table(table);
        IdempotencyStore {
            kv: kv.clone(),
            sim: sim.clone(),
            recorder,
            policy,
            rng: Rc::new(RefCell::new(sim.rng(label))),
            table: table.to_owned(),
        }
    }

    /// Run `op` (or skip it) so that exactly one effect is ever
    /// committed under `key`, no matter how many concurrent or
    /// sequential executions share that key.
    ///
    /// - First committed execution: runs `op`, commits its value with a
    ///   conditional write, returns `deduped: false`.
    /// - Any later execution: returns the committed value with
    ///   `deduped: true` — either from the fast-path read or after
    ///   losing the `put_if(NotExists)` race.
    pub async fn execute<Fut>(
        &self,
        caller: &Host,
        key: &str,
        op: impl FnOnce() -> Fut,
    ) -> Result<Effect, RetryError<KvError>>
    where
        Fut: Future<Output = Payload>,
    {
        // Fast path: the effect may already be committed.
        if let Some(prior) = self.read(caller, key).await? {
            self.recorder.incr("resil.idem.dedup");
            return Ok(Effect {
                value: prior,
                deduped: true,
            });
        }
        let value = op().await;
        let committed = self
            .policy
            .run(&self.sim, &self.rng, KvError::is_transient, || {
                self.kv.put_if(
                    caller,
                    &self.table,
                    key,
                    value.clone(),
                    Condition::NotExists,
                )
            })
            .await;
        match committed {
            Ok(_) => {
                self.recorder.incr("resil.idem.committed");
                Ok(Effect {
                    value,
                    deduped: false,
                })
            }
            // Another execution committed first; its value is the one
            // observable effect.
            Err(RetryError::Fatal(KvError::ConditionFailed)) => {
                self.recorder.incr("resil.idem.lost_race");
                let winner = self.read(caller, key).await?.ok_or(RetryError::Fatal(
                    // A NotExists failure guarantees the key exists.
                    KvError::NoSuchKey(key.to_owned()),
                ))?;
                Ok(Effect {
                    value: winner,
                    deduped: true,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Strongly-consistent read of the committed effect under `key`,
    /// retrying transient failures. `None` when nothing is committed.
    async fn read(&self, caller: &Host, key: &str) -> Result<Option<Payload>, RetryError<KvError>> {
        let got = self
            .policy
            .run(&self.sim, &self.rng, KvError::is_transient, || {
                self.kv.get(caller, &self.table, key, Consistency::Strong)
            })
            .await;
        match got {
            Ok(item) => Ok(Some(item.value)),
            Err(RetryError::Fatal(KvError::NoSuchKey(_))) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Every committed effect whose key starts with `prefix`, in key
    /// order — the ground truth for exactly-once invariant checks.
    pub async fn committed(
        &self,
        caller: &Host,
        prefix: &str,
    ) -> Result<Vec<(String, Payload)>, RetryError<KvError>> {
        let rows = self
            .policy
            .run(&self.sim, &self.rng, KvError::is_transient, || {
                self.kv.scan_prefix(caller, &self.table, prefix)
            })
            .await?;
        Ok(rows
            .into_iter()
            .map(|(k, item)| (k, item.value))
            .collect())
    }

    /// Number of committed effects under `prefix`.
    pub async fn committed_count(
        &self,
        caller: &Host,
        prefix: &str,
    ) -> Result<usize, RetryError<KvError>> {
        Ok(self.committed(caller, prefix).await?.len())
    }

    /// The backing table name.
    pub fn table(&self) -> &str {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasim::{Cloud, CloudProfile};
    use std::cell::Cell;

    fn store(cloud: &Cloud) -> IdempotencyStore {
        IdempotencyStore::new(
            &cloud.sim,
            &cloud.kv,
            cloud.recorder.clone(),
            "effects",
            RetryPolicy::default(),
            "resil.idem.test",
        )
    }

    #[test]
    fn duplicate_keys_run_the_effect_once() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 17);
        let s = store(&cloud);
        let host = cloud.client_host();
        let runs = Rc::new(Cell::new(0u32));
        let r = runs.clone();
        cloud.sim.block_on(async move {
            for _ in 0..5 {
                let r2 = r.clone();
                let eff = s
                    .execute(&host, "req-1", move || {
                        r2.set(r2.get() + 1);
                        async { Payload::inline("done") }
                    })
                    .await
                    .expect("execute");
                assert!(eff.value.eq_bytes(b"done"));
            }
            assert_eq!(s.committed_count(&host, "req-").await.unwrap(), 1);
        });
        assert_eq!(runs.get(), 1, "the effect body ran exactly once");
        assert_eq!(cloud.recorder.counter("resil.idem.committed"), 1);
        assert_eq!(cloud.recorder.counter("resil.idem.dedup"), 4);
    }

    #[test]
    fn concurrent_racers_commit_exactly_once() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 18);
        let s = store(&cloud);
        let host = cloud.client_host();
        let sim = cloud.sim.clone();
        let mut handles = Vec::new();
        for i in 0..8u32 {
            let s = s.clone();
            let host = host.clone();
            handles.push(sim.spawn(async move {
                s.execute(&host, "race", move || async move {
                    Payload::inline(format!("winner-{i}"))
                })
                .await
                .expect("execute")
            }));
        }
        let sim2 = sim.clone();
        let s2 = s.clone();
        let host2 = host.clone();
        sim.block_on(async move {
            let effects = faasim_simcore::join_all(handles).await;
            // All eight observe the same single committed value.
            let first = effects[0].value.to_vec();
            assert!(effects.iter().all(|e| e.value.to_vec() == first));
            assert_eq!(effects.iter().filter(|e| !e.deduped).count(), 1);
            assert_eq!(s2.committed_count(&host2, "race").await.unwrap(), 1);
            let _ = sim2;
        });
        assert_eq!(cloud.recorder.counter("resil.idem.committed"), 1);
    }

    #[test]
    fn distinct_keys_commit_independently() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 19);
        let s = store(&cloud);
        let host = cloud.client_host();
        cloud.sim.block_on(async move {
            for i in 0..4 {
                s.execute(&host, &format!("job-{i}"), || async move {
                    Payload::inline(format!("out-{i}"))
                })
                .await
                .expect("execute");
            }
            let rows = s.committed(&host, "job-").await.unwrap();
            assert_eq!(rows.len(), 4);
            assert!(rows[2].1.eq_bytes(b"out-2"));
        });
    }
}
