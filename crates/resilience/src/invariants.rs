//! Cross-cutting invariants a chaotic run must still satisfy.
//!
//! Fault injection is only useful if something checks that the system
//! *under* fault keeps its promises. These checks are deliberately
//! global — they read the shared [`Recorder`] and [`Ledger`] rather
//! than scenario state, so every workload gets them for free.

use faasim_pricing::Ledger;
use faasim_queue::QueueService;
use faasim_simcore::Recorder;

/// Message conservation: every message the fabric accepted must be
/// accounted for as delivered, dropped (dead host / no socket),
/// partitioned, or chaos-lost. Chaos may *reclassify* messages, but it
/// must never make one vanish without a counter.
pub fn message_conservation(recorder: &Recorder) -> Option<String> {
    let sent = recorder.counter("net.messages_sent");
    let delivered = recorder.counter("net.messages_delivered");
    let dropped = recorder.counter("net.messages_dropped");
    let partitioned = recorder.counter("net.messages_partitioned");
    let lost = recorder.counter("net.messages_lost");
    let accounted = delivered + dropped + partitioned + lost;
    if sent != accounted {
        return Some(format!(
            "message conservation violated: sent={sent} != \
             delivered={delivered} + dropped={dropped} + \
             partitioned={partitioned} + lost={lost} (= {accounted})"
        ));
    }
    None
}

/// DLQ-aware queue-message conservation: every stored copy (client
/// sends, chaos duplicates, dead-letter moves) must end the run
/// deleted, dead-lettered, or still sitting in some queue. Duplication
/// and redelivery are *allowed* — silent loss is not.
pub fn queue_conservation(recorder: &Recorder, queues: &QueueService) -> Option<String> {
    let enqueued = recorder.counter("queue.enqueued");
    let deleted = recorder.counter("queue.deleted_messages");
    let dead_lettered = recorder.counter("queue.dead_lettered");
    let remaining = queues.total_remaining();
    let accounted = deleted + dead_lettered + remaining;
    if enqueued != accounted {
        return Some(format!(
            "queue conservation violated: enqueued={enqueued} != \
             deleted={deleted} + dead_lettered={dead_lettered} + \
             remaining={remaining} (= {accounted})"
        ));
    }
    None
}

/// Billing-ledger consistency: every line item finite and non-negative,
/// per-service subtotals summing to the grand total. Chaos must never
/// corrupt the bill — throttled and crashed requests are either billed
/// like AWS bills them or not billed at all, but never billed NaN.
pub fn ledger_consistent(ledger: &Ledger) -> Option<String> {
    let items = ledger.breakdown();
    let mut sum = 0.0;
    for (service, item, quantity, dollars) in &items {
        if !quantity.is_finite() || *quantity < 0.0 {
            return Some(format!("bad quantity {quantity} for {service}/{item}"));
        }
        if !dollars.is_finite() || *dollars < 0.0 {
            return Some(format!("bad charge ${dollars} for {service}/{item}"));
        }
        sum += dollars;
    }
    let total = ledger.total();
    let tolerance = 1e-9 * (1.0 + total.abs());
    if (total - sum).abs() > tolerance {
        return Some(format!(
            "ledger total ${total} != sum of line items ${sum}"
        ));
    }
    None
}
