//! A deterministic circuit breaker: closed → open → half-open, with
//! every transition a pure function of call outcomes and simulation
//! time.
//!
//! Under a brownout (KV throttling storm, blob 503 wave) naive clients
//! retry-storm: every caller piles backoff on top of a service that is
//! already shedding load. A breaker converts that into fast, cheap
//! *declared* failures — callers see [`BreakerError::Open`] immediately
//! and can degrade — then probes the dependency with a bounded number
//! of half-open trial calls before closing again.

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::rc::Rc;

use faasim_simcore::{Recorder, Sim, SimDuration, SimTime};

/// Breaker tuning. All transitions are deterministic: no randomness is
/// ever consumed.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing half-open probes.
    pub cooldown: SimDuration,
    /// Consecutive probe successes (while half-open) required to close.
    pub close_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: SimDuration::from_secs(5),
            close_after: 2,
        }
    }
}

/// The three classic breaker states.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow through; consecutive failures are counted.
    Closed,
    /// Calls are shed immediately until the cooldown elapses.
    Open,
    /// A limited number of trial calls probe the dependency.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Error surface of a call made through a breaker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BreakerError<E> {
    /// The breaker is open: the call was shed without being attempted.
    Open {
        /// When half-open probing becomes possible.
        retry_at: SimTime,
    },
    /// The call was attempted and failed with the inner error.
    Inner(E),
}

impl<E> BreakerError<E> {
    /// The wrapped error, when the call actually ran.
    pub fn into_inner(self) -> Option<E> {
        match self {
            BreakerError::Inner(e) => Some(e),
            BreakerError::Open { .. } => None,
        }
    }
}

impl<E: fmt::Display> fmt::Display for BreakerError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerError::Open { retry_at } => {
                write!(f, "circuit open (shed); probing possible at {retry_at}")
            }
            BreakerError::Inner(e) => write!(f, "{e}"),
        }
    }
}

struct Inner {
    state: BreakerState,
    /// Consecutive failures while closed.
    failures: u32,
    /// Consecutive successes while half-open.
    successes: u32,
    /// When the breaker last tripped open.
    opened_at: SimTime,
    /// Whether a half-open probe is currently in flight (only one is
    /// admitted at a time, so a burst of callers cannot re-storm a
    /// recovering dependency).
    probing: bool,
}

/// A shared circuit breaker. Cheap to clone; clones share state, so one
/// breaker can guard every client of a service.
#[derive(Clone)]
pub struct CircuitBreaker {
    sim: Sim,
    recorder: Recorder,
    name: &'static str,
    config: BreakerConfig,
    inner: Rc<RefCell<Inner>>,
}

impl CircuitBreaker {
    /// A new breaker named `name` (used in recorder counters:
    /// `resil.breaker.<name>.opened` / `.shed` / `.closed`).
    pub fn new(
        sim: &Sim,
        recorder: Recorder,
        name: &'static str,
        config: BreakerConfig,
    ) -> CircuitBreaker {
        CircuitBreaker {
            sim: sim.clone(),
            recorder,
            name,
            config,
            inner: Rc::new(RefCell::new(Inner {
                state: BreakerState::Closed,
                failures: 0,
                successes: 0,
                opened_at: SimTime::ZERO,
                probing: false,
            })),
        }
    }

    /// The current state, advancing open → half-open if the cooldown
    /// has elapsed.
    pub fn state(&self) -> BreakerState {
        let mut st = self.inner.borrow_mut();
        self.advance(&mut st);
        st.state
    }

    fn counter(&self, suffix: &str) -> String {
        format!("resil.breaker.{}.{suffix}", self.name)
    }

    /// Open → half-open once the cooldown has elapsed.
    fn advance(&self, st: &mut Inner) {
        if st.state == BreakerState::Open
            && self.sim.now() >= st.opened_at.saturating_add(self.config.cooldown)
        {
            st.state = BreakerState::HalfOpen;
            st.successes = 0;
            st.probing = false;
        }
    }

    /// Whether a call may proceed right now; errs with the shed
    /// response when the breaker is open (or a probe is already out).
    fn admit<E>(&self) -> Result<(), BreakerError<E>> {
        let mut st = self.inner.borrow_mut();
        self.advance(&mut st);
        match st.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                drop(st);
                self.recorder.incr(&self.counter("shed"));
                Err(BreakerError::Open {
                    retry_at: self.inner.borrow().opened_at.saturating_add(self.config.cooldown),
                })
            }
            BreakerState::HalfOpen => {
                if st.probing {
                    let retry_at = self.sim.now();
                    drop(st);
                    self.recorder.incr(&self.counter("shed"));
                    Err(BreakerError::Open { retry_at })
                } else {
                    st.probing = true;
                    Ok(())
                }
            }
        }
    }

    fn record(&self, ok: bool) {
        let mut st = self.inner.borrow_mut();
        match (st.state, ok) {
            (BreakerState::Closed, true) => st.failures = 0,
            (BreakerState::Closed, false) => {
                st.failures += 1;
                if st.failures >= self.config.failure_threshold.max(1) {
                    st.state = BreakerState::Open;
                    st.opened_at = self.sim.now();
                    st.failures = 0;
                    drop(st);
                    self.recorder.incr(&self.counter("opened"));
                }
            }
            (BreakerState::HalfOpen, true) => {
                st.probing = false;
                st.successes += 1;
                if st.successes >= self.config.close_after.max(1) {
                    st.state = BreakerState::Closed;
                    st.failures = 0;
                    drop(st);
                    self.recorder.incr(&self.counter("closed"));
                }
            }
            (BreakerState::HalfOpen, false) => {
                st.state = BreakerState::Open;
                st.opened_at = self.sim.now();
                st.probing = false;
                drop(st);
                self.recorder.incr(&self.counter("opened"));
            }
            // A call that started before the breaker tripped open can
            // complete while it is open; its outcome is stale — ignore.
            (BreakerState::Open, _) => {}
        }
    }

    /// Low-level admission check, for composing the breaker into a
    /// larger admission pipeline (e.g. a gateway front door) where the
    /// guarded section is not a single future. Pair every `Ok(())` with
    /// exactly one later [`observe`](CircuitBreaker::observe) call so
    /// the state machine sees the outcome.
    pub fn try_admit<E>(&self) -> Result<(), BreakerError<E>> {
        self.admit()
    }

    /// Feed the outcome of a call admitted via
    /// [`try_admit`](CircuitBreaker::try_admit).
    pub fn observe(&self, ok: bool) {
        self.record(ok);
    }

    /// Run `op` through the breaker. Sheds with [`BreakerError::Open`]
    /// when open; otherwise attempts the call, feeding its outcome into
    /// the state machine. `counts_as_failure` classifies errors — a
    /// fatal application error (missing table, bad request) should not
    /// trip the breaker, while throttling or timeouts should.
    pub async fn call<T, E, Fut>(
        &self,
        counts_as_failure: impl Fn(&E) -> bool,
        op: Fut,
    ) -> Result<T, BreakerError<E>>
    where
        Fut: Future<Output = Result<T, E>>,
    {
        self.admit::<E>()?;
        match op.await {
            Ok(v) => {
                self.record(true);
                Ok(v)
            }
            Err(e) => {
                self.record(!counts_as_failure(&e));
                Err(BreakerError::Inner(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(sim: &Sim) -> CircuitBreaker {
        CircuitBreaker::new(
            sim,
            Recorder::new(),
            "test",
            BreakerConfig {
                failure_threshold: 3,
                cooldown: SimDuration::from_secs(10),
                close_after: 2,
            },
        )
    }

    #[test]
    fn trips_after_threshold_and_sheds() {
        let sim = Sim::new(5);
        let b = breaker(&sim);
        let sim2 = sim.clone();
        let b2 = b.clone();
        sim.block_on(async move {
            for _ in 0..3 {
                let r: Result<(), _> = b2.call(|_| true, async { Err("boom") }).await;
                assert!(matches!(r, Err(BreakerError::Inner("boom"))));
            }
            assert_eq!(b2.state(), BreakerState::Open);
            // Shed without running the op.
            let r: Result<(), BreakerError<&str>> =
                b2.call(|_| true, async { Ok(()) }).await;
            assert!(matches!(r, Err(BreakerError::Open { .. })));
            sim2.sleep(SimDuration::from_secs(1)).await;
            assert_eq!(b2.state(), BreakerState::Open, "cooldown not elapsed");
        });
    }

    #[test]
    fn half_open_probes_then_closes() {
        let sim = Sim::new(5);
        let b = breaker(&sim);
        let sim2 = sim.clone();
        let b2 = b.clone();
        sim.block_on(async move {
            for _ in 0..3 {
                let _: Result<(), _> = b2.call(|_| true, async { Err("boom") }).await;
            }
            sim2.sleep(SimDuration::from_secs(10)).await;
            assert_eq!(b2.state(), BreakerState::HalfOpen);
            let r: Result<u32, BreakerError<&str>> = b2.call(|_| true, async { Ok(1) }).await;
            assert_eq!(r, Ok(1));
            assert_eq!(b2.state(), BreakerState::HalfOpen, "one success of two");
            let r: Result<u32, BreakerError<&str>> = b2.call(|_| true, async { Ok(2) }).await;
            assert_eq!(r, Ok(2));
            assert_eq!(b2.state(), BreakerState::Closed);
        });
    }

    #[test]
    fn half_open_failure_reopens() {
        let sim = Sim::new(5);
        let b = breaker(&sim);
        let sim2 = sim.clone();
        let b2 = b.clone();
        sim.block_on(async move {
            for _ in 0..3 {
                let _: Result<(), _> = b2.call(|_| true, async { Err("boom") }).await;
            }
            sim2.sleep(SimDuration::from_secs(10)).await;
            let _: Result<(), _> = b2.call(|_| true, async { Err("still down") }).await;
            assert_eq!(b2.state(), BreakerState::Open);
        });
    }

    #[test]
    fn fatal_errors_do_not_trip_the_breaker() {
        let sim = Sim::new(5);
        let b = breaker(&sim);
        let b2 = b.clone();
        sim.block_on(async move {
            for _ in 0..10 {
                let r: Result<(), _> = b2.call(|_| false, async { Err("bad request") }).await;
                assert!(matches!(r, Err(BreakerError::Inner(_))));
            }
            assert_eq!(b2.state(), BreakerState::Closed);
        });
    }
}
