//! Propagated per-request deadline budgets, and deadline-aware request
//! hedging.
//!
//! A deadline is an *absolute* virtual-time instant carried down a
//! request's call tree: every retry loop, backoff sleep, and hedged
//! duplicate must fit inside it. This replaces unbounded retry loops —
//! the failure mode the paper's composed-by-queues applications exhibit
//! when a dependency browns out — with a clean, declared failure at a
//! known time.

use std::future::Future;

use faasim_simcore::{select2, Either, Sim, SimDuration, SimTime};

/// An absolute virtual-time budget for one request, cheap to copy and
/// pass down a call tree.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    at: SimTime,
}

impl Deadline {
    /// A deadline at the absolute instant `at`.
    pub fn at(at: SimTime) -> Deadline {
        Deadline { at }
    }

    /// A deadline `budget` from the simulation's current instant.
    pub fn within(sim: &Sim, budget: SimDuration) -> Deadline {
        Deadline {
            at: sim.now().saturating_add(budget),
        }
    }

    /// No budget at all: never expires, never caps a call. Useful as a
    /// control and as the bridge from the unbudgeted retry API.
    pub fn unbounded() -> Deadline {
        Deadline { at: SimTime::MAX }
    }

    /// Whether this is the [`Deadline::unbounded`] sentinel.
    pub fn is_unbounded(&self) -> bool {
        self.at == SimTime::MAX
    }

    /// The absolute expiry instant.
    pub fn expires_at(&self) -> SimTime {
        self.at
    }

    /// Budget left right now (zero once expired; [`SimDuration::MAX`]-ish
    /// for unbounded deadlines).
    pub fn remaining(&self, sim: &Sim) -> SimDuration {
        self.at.duration_since(sim.now())
    }

    /// Whether the budget has run out.
    pub fn is_expired(&self, sim: &Sim) -> bool {
        !self.is_unbounded() && self.remaining(sim) == SimDuration::ZERO
    }

    /// A sub-budget: the earlier of this deadline and `budget` from now.
    /// Use when a step of a request deserves only a slice of the whole.
    pub fn min_budget(&self, sim: &Sim, budget: SimDuration) -> Deadline {
        let capped = sim.now().saturating_add(budget);
        Deadline {
            at: self.at.min(capped),
        }
    }
}

/// Race a hedged duplicate against a slow primary, inside `deadline`.
///
/// `make(0)` builds the primary attempt; if it has not finished after
/// `hedge_after`, `make(1)` builds a duplicate and the two race — the
/// loser is dropped (canceled at its next await point). Returns the
/// winning value and which attempt produced it, or `None` if the
/// deadline expired first.
///
/// Hedging trades duplicate work for tail latency, so the duplicate's
/// side effects must be idempotent — pair this with
/// [`crate::IdempotencyStore`] when the attempt writes anywhere.
pub async fn hedged<T, Fut>(
    sim: &Sim,
    hedge_after: SimDuration,
    deadline: Deadline,
    mut make: impl FnMut(u32) -> Fut,
) -> Option<(T, u32)>
where
    Fut: Future<Output = T>,
{
    let sim2 = sim.clone();
    let race = async move {
        let primary = make(0);
        let backup = async {
            sim2.sleep(hedge_after).await;
            make(1).await
        };
        match select2(primary, backup).await {
            Either::Left(v) => (v, 0),
            Either::Right(v) => (v, 1),
        }
    };
    if deadline.is_unbounded() {
        Some(race.await)
    } else {
        let remaining = deadline.remaining(sim);
        if remaining == SimDuration::ZERO {
            return None;
        }
        sim.timeout(remaining, race).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_counts_down_and_saturates() {
        let sim = Sim::new(3);
        let d = Deadline::within(&sim, SimDuration::from_secs(5));
        assert_eq!(d.remaining(&sim), SimDuration::from_secs(5));
        assert!(!d.is_expired(&sim));
        let sim2 = sim.clone();
        sim.block_on(async move {
            sim2.sleep(SimDuration::from_secs(7)).await;
        });
        assert_eq!(d.remaining(&sim), SimDuration::ZERO);
        assert!(d.is_expired(&sim));
    }

    #[test]
    fn unbounded_never_expires() {
        let sim = Sim::new(3);
        let d = Deadline::unbounded();
        assert!(d.is_unbounded());
        assert!(!d.is_expired(&sim));
    }

    #[test]
    fn min_budget_takes_the_earlier_expiry() {
        let sim = Sim::new(3);
        let outer = Deadline::within(&sim, SimDuration::from_secs(10));
        let step = outer.min_budget(&sim, SimDuration::from_secs(2));
        assert_eq!(step.remaining(&sim), SimDuration::from_secs(2));
        let wide = outer.min_budget(&sim, SimDuration::from_secs(60));
        assert_eq!(wide.expires_at(), outer.expires_at());
    }

    #[test]
    fn hedge_fires_only_when_primary_is_slow() {
        let sim = Sim::new(3);
        let sim2 = sim.clone();
        let got = sim.block_on(async move {
            let s = sim2.clone();
            hedged(
                &sim2,
                SimDuration::from_millis(100),
                Deadline::unbounded(),
                move |attempt| {
                    let s = s.clone();
                    async move {
                        // The primary is slow; the hedge answers first.
                        let d = if attempt == 0 {
                            SimDuration::from_secs(10)
                        } else {
                            SimDuration::from_millis(50)
                        };
                        s.sleep(d).await;
                        attempt * 10
                    }
                },
            )
            .await
        });
        assert_eq!(got, Some((10, 1)));
        assert_eq!(
            sim.now(),
            SimTime::ZERO + SimDuration::from_millis(150),
            "hedge delay + hedge latency, not the slow primary"
        );
    }

    #[test]
    fn hedge_respects_the_deadline() {
        let sim = Sim::new(3);
        let sim2 = sim.clone();
        let got: Option<(u32, u32)> = sim.block_on(async move {
            let s = sim2.clone();
            let deadline = Deadline::within(&sim2, SimDuration::from_millis(20));
            hedged(&sim2, SimDuration::from_millis(5), deadline, move |_| {
                let s = s.clone();
                async move {
                    s.sleep(SimDuration::from_secs(1)).await;
                    1
                }
            })
            .await
        });
        assert_eq!(got, None);
    }
}
