//! # faasim-query
//!
//! An Athena-like **autoscaling query service**: scan-and-aggregate
//! queries pushed down to the object store, executed by an elastic worker
//! pool inside the service, billed per terabyte scanned.
//!
//! This is the substrate behind the paper's §2 *orchestration functions*
//! pattern ("Lambda functions to orchestrate analytics queries that are
//! executed by AWS Athena, an autoscaling query service that works with
//! data in S3 ... the 'heavy lifting' of the computation over data is
//! done by Athena, not by Lambda"). It is also the counterpoint used by
//! the data-shipping ablation: the service scans *next to* the data at
//! aggregate worker throughput, while a Lambda doing the same work must
//! drag every byte through its own throttled NIC.
//!
//! ## The streaming scan pipeline
//!
//! A query recruits up to [`QueryProfile::max_parallelism`] workers (one
//! per [`QueryProfile::partition_bytes`] of input, capped by the object
//! count). Workers claim objects from a shared queue and **stream** each
//! one through ranged reads ([`BlobStore::get_range`]) of
//! [`QueryProfile::stream_chunk_bytes`] each, keeping several range GETs
//! in flight per worker — enough concurrent per-connection streams to
//! saturate one worker's scan throughput — and folding every chunk into
//! the aggregate's [`kernel`](crate::kernel) as the bytes arrive. Scan
//! time therefore emerges from the actual overlapped per-worker timeline
//! (transfer ∥ scan), not from a post-hoc `bytes / throughput` sleep,
//! and peak buffered data is O(chunk × pipeline depth × workers) instead
//! of O(dataset).
//!
//! The scan is real: ranges are fetched from the blob store's contents
//! and the aggregate is computed over their actual bytes (analytically,
//! for synthetic payloads — a repeated pattern folds once and scales by
//! its repeat count). [`QuerySpec::limit`] and [`Aggregate::Exists`]
//! **early-exit**: once the kernel saturates, unfetched partitions are
//! cancelled and the query bills only the bytes actually scanned.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kernel;

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use faasim_blob::{BlobError, BlobStore};
use faasim_net::{Fabric, Host, NicConfig};
use faasim_payload::LineRunScanner;
use faasim_pricing::{Ledger, PriceBook, Service};
use faasim_simcore::{
    gbps, join_all, Bps, JoinHandle, LatencyModel, Recorder, Sim, SimDuration,
};

use kernel::{kernel_for, ScanKernel};

/// Errors from query execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Underlying storage error (missing bucket, etc.).
    Storage(String),
    /// The query matched no objects.
    EmptyInput,
    /// A referenced field index was absent in every record.
    NoSuchField(usize),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::EmptyInput => write!(f, "query matched no objects"),
            QueryError::NoSuchField(i) => write!(f, "no record has field {i}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<BlobError> for QueryError {
    fn from(e: BlobError) -> Self {
        QueryError::Storage(e.to_string())
    }
}

/// Performance profile of the service.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// Planning/queueing latency before workers start.
    pub planning_latency: LatencyModel,
    /// Scan throughput of one worker, bits/second.
    pub per_worker_throughput: Bps,
    /// Bytes one worker is assigned before another is recruited.
    pub partition_bytes: u64,
    /// Elastic ceiling on concurrent workers.
    pub max_parallelism: u32,
    /// Minimum billable bytes per query (Athena: 10 MB).
    pub min_billed_bytes: u64,
    /// Size of one streamed ranged read. Bounds per-worker buffering:
    /// a worker holds at most `stream_chunk_bytes × pipeline depth` of
    /// fetched-but-unfolded data.
    pub stream_chunk_bytes: u64,
}

impl QueryProfile {
    /// Athena-like calibration circa 2018: ~1 s planning, workers that
    /// stream ~1.6 Gbps each (200 MB/s of columnar scan), 64-way
    /// elasticity, 10 MB minimum billing, 8 MB ranged reads.
    pub fn aws_2018() -> QueryProfile {
        QueryProfile {
            planning_latency: LatencyModel::LogNormal {
                mean: SimDuration::from_millis(1_000),
                cv: 0.2,
                floor: SimDuration::from_millis(300),
            },
            per_worker_throughput: gbps(1.6),
            partition_bytes: 128 * 1024 * 1024,
            max_parallelism: 64,
            min_billed_bytes: 10 * 1024 * 1024,
            stream_chunk_bytes: 8 * 1024 * 1024,
        }
    }

    /// Constant means for exact reproduction.
    pub fn exact(mut self) -> QueryProfile {
        self.planning_latency = self.planning_latency.to_constant();
        self
    }
}

/// The aggregate a query computes over matching records. Records are
/// newline-separated lines of whitespace-separated fields.
#[derive(Clone, Debug, PartialEq)]
pub enum Aggregate {
    /// Count all records.
    CountAll,
    /// Count records containing the given substring.
    CountMatching(String),
    /// Histogram of the values in field `field`.
    GroupCount {
        /// Zero-based field index.
        field: usize,
    },
    /// Sum of field `field` parsed as f64 (unparsable values skipped).
    SumField {
        /// Zero-based field index.
        field: usize,
    },
    /// Does any record contain the given substring? Returns a single
    /// `("", 1.0)` or `("", 0.0)` row and **short-circuits**: the scan
    /// stops (and billing stops accruing) as soon as a match is found.
    Exists(String),
}

/// A scan-and-aggregate query over `bucket` objects with `prefix`.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Bucket to scan.
    pub bucket: String,
    /// Key prefix selecting the objects.
    pub prefix: String,
    /// The aggregate to compute.
    pub aggregate: Aggregate,
    /// Stop scanning once this many matching records have been folded
    /// (LIMIT-style early exit). Applies to the counting aggregates
    /// ([`Aggregate::CountAll`], [`Aggregate::CountMatching`]), whose
    /// clamped result is exactly `min(limit, total)`; ignored by
    /// `GroupCount`/`SumField`, whose partial answers would depend on
    /// scan order. Billing only covers bytes scanned before saturation.
    pub limit: Option<u64>,
}

impl QuerySpec {
    /// A full-scan query (no limit).
    pub fn new(
        bucket: impl Into<String>,
        prefix: impl Into<String>,
        aggregate: Aggregate,
    ) -> QuerySpec {
        QuerySpec {
            bucket: bucket.into(),
            prefix: prefix.into(),
            aggregate,
            limit: None,
        }
    }

    /// Early-exit after `limit` matching records.
    pub fn with_limit(mut self, limit: u64) -> QuerySpec {
        self.limit = Some(limit);
        self
    }
}

/// Query result plus execution accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutput {
    /// Result rows `(group, value)`; a single `("", value)` row for
    /// scalar aggregates.
    pub rows: Vec<(String, f64)>,
    /// Bytes scanned (what you're billed for). Under early exit this is
    /// only the bytes fetched before the kernel saturated.
    pub bytes_scanned: u64,
    /// Workers recruited.
    pub workers: u32,
    /// Objects read.
    pub objects: usize,
    /// End-to-end latency as observed by the caller.
    pub duration: SimDuration,
}

/// Shared pipeline state: the object claim cursor, the scanned-byte
/// meter, and the first failure (which stops every worker).
#[derive(Default)]
struct PipelineState {
    next_object: usize,
    bytes_scanned: u64,
    failure: Option<QueryError>,
}

/// The query service handle. Cheap to clone.
#[derive(Clone)]
pub struct QueryService {
    sim: Sim,
    blob: BlobStore,
    profile: Rc<QueryProfile>,
    prices: Rc<PriceBook>,
    ledger: Ledger,
    recorder: Recorder,
    /// Service-internal host: scans run *next to the data*, not through
    /// the caller's NIC — the architectural point of the push-down.
    service_host: Host,
}

impl QueryService {
    /// Create the service on the fabric.
    pub fn new(
        sim: &Sim,
        fabric: &Fabric,
        blob: &BlobStore,
        profile: QueryProfile,
        prices: Rc<PriceBook>,
        ledger: Ledger,
        recorder: Recorder,
    ) -> QueryService {
        // The service fleet's connectivity to storage is effectively
        // unconstrained compared to any single caller.
        let service_host = fabric.add_host(0, NicConfig::simple(gbps(400.0)));
        QueryService {
            sim: sim.clone(),
            blob: blob.clone(),
            profile: Rc::new(profile),
            prices,
            ledger,
            recorder,
            service_host,
        }
    }

    /// Execute a query. The returned future completes when results are
    /// ready; the caller pays only planning + scan time, never the data
    /// movement (that happens inside the service, next to the data).
    pub async fn run(&self, caller: &Host, spec: QuerySpec) -> Result<QueryOutput, QueryError> {
        let t0 = self.sim.now();
        let planning = {
            let mut rng = self.sim.rng("query.planning");
            self.profile.planning_latency.sample(&mut rng)
        };
        self.sim.sleep(planning).await;

        let objects = self
            .blob
            .list_objects(&self.service_host, &spec.bucket, &spec.prefix)
            .await?;
        if objects.is_empty() {
            return Err(QueryError::EmptyInput);
        }
        let total_bytes: u64 = objects.iter().map(|&(_, size)| size).sum();

        // Elastic recruitment: one worker per partition of input, capped
        // by the fleet ceiling — and by the object count, since the unit
        // of work distribution is an object (line records never span
        // objects, so neither do workers).
        let workers = (total_bytes.div_ceil(self.profile.partition_bytes.max(1)) as u32)
            .clamp(1, self.profile.max_parallelism)
            .min(objects.len() as u32)
            .max(1);
        let chunk_bytes = self.profile.stream_chunk_bytes.max(1);
        // One per-connection stream usually cannot feed a scan worker
        // (41 MB/s conn vs 200 MB/s scan): keep enough concurrent range
        // GETs in flight to saturate the worker, Lambada-style.
        let depth = ((self.profile.per_worker_throughput
            / self.blob.per_conn_bandwidth().max(1.0))
        .ceil() as usize)
            .clamp(2, 8);

        let kernel = RefCell::new(kernel_for(&spec.aggregate, spec.limit));
        let state = RefCell::new(PipelineState::default());
        let scans: Vec<_> = (0..workers)
            .map(|_| self.scan_worker(&spec, &objects, chunk_bytes, depth, &kernel, &state))
            .collect();
        join_all(scans).await;

        let PipelineState {
            bytes_scanned,
            failure,
            ..
        } = state.into_inner();
        if let Some(e) = failure {
            return Err(e);
        }

        // Billing: per TB *actually scanned* with a minimum — an
        // early-exited query pays only for the bytes it touched.
        let billed = bytes_scanned.max(self.profile.min_billed_bytes);
        let tb = billed as f64 / 1e12;
        self.ledger.charge(
            Service::Query,
            "tb-scanned",
            tb,
            tb * self.prices.query_per_tb_scanned,
        );
        self.recorder.incr("query.executed");
        self.recorder.add("query.bytes_scanned", bytes_scanned);
        // Per-caller attribution, so multi-tenant experiments can see
        // who drove the scan bill.
        let host_tag = caller.id().0;
        self.recorder.incr(&format!("query.executed.host-{host_tag}"));
        self.recorder
            .add(&format!("query.bytes_scanned.host-{host_tag}"), bytes_scanned);

        let rows = kernel.into_inner().finish()?;
        Ok(QueryOutput {
            rows,
            bytes_scanned,
            workers,
            objects: objects.len(),
            duration: self.sim.now() - t0,
        })
    }

    /// One scan worker: claim objects off the shared cursor and stream
    /// each through a pipeline of `depth` concurrent ranged reads,
    /// folding chunks into the shared kernel in order as they land. A
    /// saturated kernel stops issuance everywhere; chunks already in
    /// flight are folded (their transfer was paid) but nothing new is
    /// fetched.
    async fn scan_worker(
        &self,
        spec: &QuerySpec,
        objects: &[(String, u64)],
        chunk_bytes: u64,
        depth: usize,
        kernel: &RefCell<Box<dyn ScanKernel>>,
        state: &RefCell<PipelineState>,
    ) {
        // An in-flight ranged read: (object index, is-last-chunk, fetch).
        type InflightChunk = (usize, bool, JoinHandle<Result<faasim_payload::Payload, BlobError>>);
        // (object index, next offset to fetch) for the object currently
        // being issued.
        let mut issue: Option<(usize, u64)> = None;
        let mut inflight: VecDeque<InflightChunk> = VecDeque::new();
        // Chunks are folded FIFO, so at most one object is mid-fold at a
        // time; its scanner carries partial lines across chunk bounds.
        let mut fold: Option<(usize, LineRunScanner)> = None;

        loop {
            // Top up the ranged-read pipeline.
            while inflight.len() < depth
                && state.borrow().failure.is_none()
                && !kernel.borrow().saturated()
            {
                let (obj, off) = match issue {
                    Some((obj, off)) if off < objects[obj].1 => (obj, off),
                    _ => {
                        let next = {
                            let mut st = state.borrow_mut();
                            let n = st.next_object;
                            if n < objects.len() {
                                st.next_object += 1;
                            }
                            n
                        };
                        if next >= objects.len() {
                            break;
                        }
                        issue = Some((next, 0));
                        if objects[next].1 == 0 {
                            // Empty object: nothing to fetch, no lines.
                            continue;
                        }
                        (next, 0)
                    }
                };
                let size = objects[obj].1;
                let end = (off + chunk_bytes).min(size);
                let blob = self.blob.clone();
                let host = self.service_host.clone();
                let bucket = spec.bucket.clone();
                let key = objects[obj].0.clone();
                let fetch = self
                    .sim
                    .spawn(async move { blob.get_range(&host, &bucket, &key, off..end).await });
                inflight.push_back((obj, end == size, fetch));
                issue = Some((obj, end));
            }

            // Fold the oldest chunk while the rest keep streaming.
            let Some((obj, last, fetch)) = inflight.pop_front() else {
                break;
            };
            let body = match fetch.await {
                Ok(b) => b,
                Err(e) => {
                    state.borrow_mut().failure.get_or_insert(e.into());
                    break;
                }
            };
            if kernel.borrow().saturated() {
                // Early exit: the answer is already final, so in-flight
                // chunks are discarded unscanned — they never hit the
                // byte meter, and the query never bills for them.
                fold = None;
                continue;
            }
            // Scan cost as the bytes arrive, at one worker's throughput.
            self.sim
                .sleep(SimDuration::from_secs_f64(
                    body.len() as f64 * 8.0 / self.profile.per_worker_throughput,
                ))
                .await;
            state.borrow_mut().bytes_scanned += body.len() as u64;

            if !matches!(fold, Some((o, _)) if o == obj) {
                fold = Some((obj, LineRunScanner::new()));
            }
            let (_, scanner) = fold.as_mut().expect("fold scanner just ensured");
            let mut k = kernel.borrow_mut();
            scanner.feed(&body, &mut |line, n| visit_line(k.as_mut(), line, n));
            if last {
                // Whole object folded: flush its trailing unterminated
                // line, exactly like a scan of the full body would.
                if let Some((_, scanner)) = fold.take() {
                    scanner.finish(&mut |line, n| visit_line(k.as_mut(), line, n));
                }
            }
        }
    }
}

/// Record normalization in front of every kernel: trim one trailing
/// `\r` (CRLF logs) and skip empty records.
fn visit_line(kernel: &mut dyn ScanKernel, line: &[u8], n: u64) {
    let line = match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    };
    if line.is_empty() {
        return;
    }
    kernel.visit(line, n);
}

#[cfg(test)]
mod proptests {
    use super::*;
    use bytes::Bytes;
    use faasim_blob::BlobProfile;
    use faasim_net::NetProfile;
    use faasim_payload::Payload;
    use faasim_simcore::mbps;
    use proptest::prelude::*;

    /// Random corpora: the pushed-down aggregate must equal a naive
    /// in-memory computation over the same lines.
    fn naive_group_count(docs: &[Vec<String>], field: usize) -> Vec<(String, f64)> {
        let mut out: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for doc in docs {
            for line in doc {
                if let Some(v) = line.split_whitespace().nth(field) {
                    *out.entry(v.to_owned()).or_default() += 1;
                }
            }
        }
        out.into_iter().map(|(k, v)| (k, v as f64)).collect()
    }

    fn line_strategy() -> impl Strategy<Value = String> {
        (0u8..5, 0u8..4, 0u16..300).prop_map(|(verb, status, path)| {
            format!("verb{verb} /p/{path} s{status}")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn pushed_down_aggregates_match_naive(
            docs in prop::collection::vec(
                prop::collection::vec(line_strategy(), 1..40), 1..6),
        ) {
            let sim = faasim_simcore::Sim::new(17);
            let recorder = Recorder::new();
            let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
            let prices = Rc::new(PriceBook::aws_2018());
            let ledger = Ledger::new();
            let blob = BlobStore::new(
                &sim,
                BlobProfile::aws_2018().exact(),
                prices.clone(),
                ledger.clone(),
                recorder.clone(),
            );
            blob.create_bucket("logs");
            let query = QueryService::new(
                &sim, &fabric, &blob,
                QueryProfile::aws_2018().exact(),
                prices, ledger, recorder,
            );
            let client = fabric.add_host(1, faasim_net::NicConfig::simple(mbps(1_000.0)));
            let total_lines: usize = docs.iter().map(Vec::len).sum();
            for (i, doc) in docs.iter().enumerate() {
                let blob = blob.clone();
                let client = client.clone();
                let body = Bytes::from(doc.join("\n").into_bytes());
                let key = format!("obj-{i:03}");
                sim.block_on(async move {
                    blob.put(&client, "logs", &key, body).await.unwrap();
                });
            }
            let q = query.clone();
            let c = client.clone();
            let (count, groups) = sim.block_on(async move {
                let count = q.run(&c, QuerySpec::new(
                    "logs", "obj-", Aggregate::CountAll,
                )).await.unwrap();
                let groups = q.run(&c, QuerySpec::new(
                    "logs", "obj-", Aggregate::GroupCount { field: 2 },
                )).await.unwrap();
                (count, groups)
            });
            prop_assert_eq!(count.rows[0].1 as usize, total_lines);
            prop_assert_eq!(groups.rows, naive_group_count(&docs, 2));
        }
    }

    // ---- streaming-vs-eager differential suite -------------------------

    /// One object body: inline bytes, a synthetic repetition, or a
    /// concatenation — the three payload shapes the data plane ships.
    #[derive(Clone, Debug)]
    enum Body {
        Inline(Vec<String>),
        Synthetic(Vec<String>, u64),
        Concat(Vec<Body>),
    }

    impl Body {
        fn build(&self) -> Payload {
            match self {
                Body::Inline(lines) => Payload::inline(lines.join("\n").into_bytes()),
                Body::Synthetic(lines, reps) => {
                    let mut pat = lines.join("\n");
                    pat.push('\n');
                    Payload::synthetic(pat, *reps)
                }
                Body::Concat(parts) => Payload::concat(parts.iter().map(Body::build)),
            }
        }

        fn materialize(&self) -> Vec<u8> {
            match self {
                Body::Inline(lines) => lines.join("\n").into_bytes(),
                Body::Synthetic(lines, reps) => {
                    let mut pat = lines.join("\n");
                    pat.push('\n');
                    pat.repeat(*reps as usize).into_bytes()
                }
                Body::Concat(parts) => {
                    parts.iter().flat_map(|p| p.materialize()).collect()
                }
            }
        }
    }

    fn diff_line_strategy() -> impl Strategy<Value = String> {
        // Integer-valued second field so SumField totals are exact in
        // f64 whatever order workers fold them in.
        (0u8..4, 0u16..40).prop_map(|(tag, num)| format!("t{tag} {num} end"))
    }

    fn leaf_body_strategy() -> impl Strategy<Value = Body> {
        prop_oneof![
            prop::collection::vec(diff_line_strategy(), 0..12).prop_map(Body::Inline),
            (prop::collection::vec(diff_line_strategy(), 1..4), 1u64..40)
                .prop_map(|(l, r)| Body::Synthetic(l, r)),
        ]
    }

    fn body_strategy() -> impl Strategy<Value = Body> {
        prop_oneof![
            leaf_body_strategy(),
            prop::collection::vec(leaf_body_strategy(), 2..4).prop_map(Body::Concat),
        ]
    }

    /// The naive eager reference: materialize every object, split each
    /// into records exactly like the old one-pass scan did (per-object
    /// line boundaries, `\r` trim, empty skip), and aggregate in memory.
    struct NaiveScan {
        records: Vec<String>,
    }

    impl NaiveScan {
        fn of(objects: &[Vec<u8>]) -> NaiveScan {
            let mut records = Vec::new();
            for bytes in objects {
                for line in bytes.split(|&c| c == b'\n') {
                    let line = match line.last() {
                        Some(b'\r') => &line[..line.len() - 1],
                        _ => line,
                    };
                    if !line.is_empty() {
                        records.push(String::from_utf8_lossy(line).into_owned());
                    }
                }
            }
            NaiveScan { records }
        }

        fn rows(&self, agg: &Aggregate) -> Result<Vec<(String, f64)>, QueryError> {
            match agg {
                Aggregate::CountAll => {
                    Ok(vec![(String::new(), self.records.len() as f64)])
                }
                Aggregate::CountMatching(needle) => Ok(vec![(
                    String::new(),
                    self.records.iter().filter(|r| r.contains(needle.as_str())).count() as f64,
                )]),
                Aggregate::Exists(needle) => Ok(vec![(
                    String::new(),
                    if self.records.iter().any(|r| r.contains(needle.as_str())) {
                        1.0
                    } else {
                        0.0
                    },
                )]),
                Aggregate::GroupCount { field } => {
                    let mut out: std::collections::BTreeMap<String, u64> =
                        std::collections::BTreeMap::new();
                    for r in &self.records {
                        if let Some(v) = r.split_whitespace().nth(*field) {
                            *out.entry(v.to_owned()).or_default() += 1;
                        }
                    }
                    if out.is_empty() {
                        return Err(QueryError::NoSuchField(*field));
                    }
                    Ok(out.into_iter().map(|(k, v)| (k, v as f64)).collect())
                }
                Aggregate::SumField { field } => {
                    let mut sum = 0.0;
                    let mut any = false;
                    for r in &self.records {
                        if let Some(v) = r.split_whitespace().nth(*field) {
                            any = true;
                            if let Ok(v) = v.parse::<f64>() {
                                sum += v;
                            }
                        }
                    }
                    if !any {
                        return Err(QueryError::NoSuchField(*field));
                    }
                    Ok(vec![(String::new(), sum)])
                }
            }
        }
    }

    /// Build a world with deliberately tiny chunks and partitions so the
    /// streaming pipeline exercises multi-worker claim races and lines
    /// straddling chunk boundaries even on small corpora, run every
    /// aggregate, and return `(outputs, query bill, recorder digest)`.
    #[allow(clippy::type_complexity)]
    fn run_streaming_world(
        bodies: &[Body],
        aggs: &[Aggregate],
        seed: u64,
    ) -> (Vec<Result<QueryOutput, QueryError>>, f64, String) {
        let sim = faasim_simcore::Sim::new(seed);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let prices = Rc::new(PriceBook::aws_2018());
        let ledger = Ledger::new();
        let blob = BlobStore::new(
            &sim,
            BlobProfile::aws_2018().exact(),
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        blob.create_bucket("logs");
        let mut profile = QueryProfile::aws_2018().exact();
        profile.stream_chunk_bytes = 7; // lines straddle every chunk
        profile.partition_bytes = 64; // several workers even at toy scale
        let query = QueryService::new(
            &sim,
            &fabric,
            &blob,
            profile,
            prices,
            ledger.clone(),
            recorder.clone(),
        );
        let client = fabric.add_host(1, faasim_net::NicConfig::simple(mbps(1_000.0)));
        for (i, body) in bodies.iter().enumerate() {
            let blob = blob.clone();
            let client = client.clone();
            let payload = body.build();
            let key = format!("obj-{i:03}");
            sim.block_on(async move {
                blob.put(&client, "logs", &key, payload).await.unwrap();
            });
        }
        let mut outputs = Vec::new();
        for agg in aggs {
            let q = query.clone();
            let c = client.clone();
            let spec = QuerySpec::new("logs", "obj-", agg.clone());
            outputs.push(sim.block_on(async move { q.run(&c, spec).await }));
        }
        (outputs, ledger.total_for(Service::Query), recorder.digest())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The differential guarantee for the streaming pipeline: over
        /// random corpora mixing Inline/Synthetic/Concat bodies, every
        /// aggregate's rows equal a naive eager in-memory scan, the
        /// byte meter and the bill are exact, and the whole run is
        /// deterministic (byte-identical recorder digest on replay).
        #[test]
        fn streaming_pipeline_matches_naive_eager_scan(
            bodies in prop::collection::vec(body_strategy(), 1..5),
        ) {
            let materialized: Vec<Vec<u8>> =
                bodies.iter().map(Body::materialize).collect();
            let naive = NaiveScan::of(&materialized);
            let total_bytes: u64 =
                materialized.iter().map(|b| b.len() as u64).sum();
            let aggs = [
                Aggregate::CountAll,
                Aggregate::CountMatching("t1".into()),
                Aggregate::GroupCount { field: 0 },
                Aggregate::SumField { field: 1 },
                // Never matches: the Exists scan must cover everything.
                Aggregate::Exists("@@absent@@".into()),
            ];

            let (outputs, billed, digest) =
                run_streaming_world(&bodies, &aggs, 99);
            let min_billed = QueryProfile::aws_2018().min_billed_bytes;
            let price = PriceBook::aws_2018().query_per_tb_scanned;
            let mut expected_bill = 0.0;
            for (agg, out) in aggs.iter().zip(&outputs) {
                match (naive.rows(agg), out) {
                    (Ok(rows), Ok(out)) => {
                        prop_assert_eq!(&rows, &out.rows, "agg {:?}", agg);
                        prop_assert_eq!(
                            out.bytes_scanned, total_bytes,
                            "agg {:?} must scan everything", agg
                        );
                        expected_bill +=
                            total_bytes.max(min_billed) as f64 / 1e12 * price;
                    }
                    (Err(e), Err(got)) => prop_assert_eq!(&e, got),
                    (naive, got) => prop_assert!(
                        false, "divergence on {:?}: naive {:?} vs {:?}",
                        agg, naive, got
                    ),
                }
            }
            prop_assert!(
                (billed - expected_bill).abs() < 1e-12,
                "billed {billed}, expected {expected_bill}"
            );

            // Replay: an identical world produces a byte-identical
            // recorder digest — the pipeline is deterministic.
            let (_, _, digest2) = run_streaming_world(&bodies, &aggs, 99);
            prop_assert_eq!(digest, digest2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use faasim_blob::BlobProfile;
    use faasim_net::NetProfile;
    use faasim_payload::Payload;
    use faasim_simcore::mbps;

    struct World {
        sim: Sim,
        blob: BlobStore,
        query: QueryService,
        client: Host,
        ledger: Ledger,
        recorder: Recorder,
    }

    fn setup() -> World {
        let sim = Sim::new(31);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let prices = Rc::new(PriceBook::aws_2018());
        let ledger = Ledger::new();
        let blob = BlobStore::new(
            &sim,
            BlobProfile::aws_2018().exact(),
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        blob.create_bucket("logs");
        let query = QueryService::new(
            &sim,
            &fabric,
            &blob,
            QueryProfile::aws_2018().exact(),
            prices,
            ledger.clone(),
            recorder.clone(),
        );
        let client = fabric.add_host(3, NicConfig::simple(mbps(1_000.0)));
        World {
            sim,
            blob,
            query,
            client,
            ledger,
            recorder,
        }
    }

    fn put_log(w: &World, key: &str, lines: &[&str]) {
        let blob = w.blob.clone();
        let client = w.client.clone();
        let body = Bytes::from(lines.join("\n").into_bytes());
        let key = key.to_owned();
        w.sim.block_on(async move {
            blob.put(&client, "logs", &key, body).await.unwrap();
        });
    }

    fn run_query(w: &World, spec: QuerySpec) -> Result<QueryOutput, QueryError> {
        let q = w.query.clone();
        let c = w.client.clone();
        w.sim.block_on(async move { q.run(&c, spec).await })
    }

    #[test]
    fn count_all_over_multiple_objects() {
        let w = setup();
        put_log(&w, "day-1", &["GET /a 200", "GET /b 404"]);
        put_log(&w, "day-2", &["POST /a 200"]);
        let out = run_query(&w, QuerySpec::new("logs", "day-", Aggregate::CountAll)).unwrap();
        assert_eq!(out.rows, vec![(String::new(), 3.0)]);
        assert_eq!(out.objects, 2);
        assert!(out.bytes_scanned > 0);
    }

    #[test]
    fn group_count_histograms_a_field() {
        let w = setup();
        put_log(
            &w,
            "day-1",
            &["GET /a 200", "GET /b 404", "GET /c 200", "PUT /a 200"],
        );
        let out = run_query(
            &w,
            QuerySpec::new("logs", "", Aggregate::GroupCount { field: 2 }),
        )
        .unwrap();
        assert_eq!(
            out.rows,
            vec![("200".to_owned(), 3.0), ("404".to_owned(), 1.0)]
        );
    }

    #[test]
    fn sum_and_match_aggregates() {
        let w = setup();
        put_log(&w, "x", &["a 1.5", "b 2.5", "a nan-ish"]);
        let sum = run_query(&w, QuerySpec::new("logs", "", Aggregate::SumField { field: 1 }))
            .unwrap();
        let matched = run_query(
            &w,
            QuerySpec::new("logs", "", Aggregate::CountMatching("a ".into())),
        )
        .unwrap();
        assert_eq!(sum.rows[0].1, 4.0);
        assert_eq!(matched.rows[0].1, 2.0);
    }

    #[test]
    fn missing_field_and_empty_input_error() {
        let w = setup();
        put_log(&w, "x", &["only-one-field"]);
        let missing = run_query(
            &w,
            QuerySpec::new("logs", "", Aggregate::GroupCount { field: 5 }),
        );
        let empty = run_query(&w, QuerySpec::new("logs", "zzz", Aggregate::CountAll));
        assert_eq!(missing.unwrap_err(), QueryError::NoSuchField(5));
        assert_eq!(empty.unwrap_err(), QueryError::EmptyInput);
    }

    #[test]
    fn billing_is_per_tb_with_minimum() {
        let w = setup();
        put_log(&w, "tiny", &["x 1"]);
        run_query(&w, QuerySpec::new("logs", "", Aggregate::CountAll)).unwrap();
        // A 3-byte scan still bills the 10 MB minimum at $5/TB.
        let want = (10.0 * 1024.0 * 1024.0) / 1e12 * 5.0;
        let got = w.ledger.total_for(Service::Query);
        assert!((got - want).abs() < 1e-12, "billed {got}, want {want}");
    }

    #[test]
    fn per_caller_scan_metrics_are_attributed() {
        let w = setup();
        put_log(&w, "day-1", &["GET /a 200", "GET /b 404"]);
        let out = run_query(&w, QuerySpec::new("logs", "", Aggregate::CountAll)).unwrap();
        // The client host that drove the query owns the scan bill in the
        // recorder, keyed by its host id.
        let tag = w.client.id().0;
        assert_eq!(
            w.recorder.counter(&format!("query.executed.host-{tag}")),
            1
        );
        assert_eq!(
            w.recorder.counter(&format!("query.bytes_scanned.host-{tag}")),
            out.bytes_scanned
        );
        assert_eq!(w.recorder.counter("query.bytes_scanned"), out.bytes_scanned);
    }

    #[test]
    fn limit_saturates_and_bills_only_scanned_bytes() {
        let w = setup();
        // 100 MB of synthetic logs across 10 objects; a LIMIT 5 count
        // must stop after the first streamed chunks, not drag 100 MB.
        let line = "GET /assets/app.js 200\n";
        let reps = 10_000_000 / line.len() as u64;
        for i in 0..10 {
            let blob = w.blob.clone();
            let client = w.client.clone();
            let key = format!("big-{i}");
            let body = Payload::synthetic(line, reps);
            w.sim.block_on(async move {
                blob.put(&client, "logs", &key, body).await.unwrap();
            });
        }
        let total: u64 = 10 * reps * line.len() as u64;
        let out = run_query(
            &w,
            QuerySpec::new("logs", "big-", Aggregate::CountAll).with_limit(5),
        )
        .unwrap();
        assert_eq!(out.rows, vec![(String::new(), 5.0)]);
        assert!(
            out.bytes_scanned < total / 2,
            "early exit scanned {} of {total} bytes",
            out.bytes_scanned
        );
        // The bill covers only the scanned bytes (with the 10 MB floor),
        // not the dataset.
        let billed = out
            .bytes_scanned
            .max(QueryProfile::aws_2018().min_billed_bytes);
        let want = billed as f64 / 1e12 * 5.0;
        let got = w.ledger.total_for(Service::Query);
        assert!((got - want).abs() < 1e-12, "billed {got}, want {want}");
    }

    #[test]
    fn exists_short_circuits_and_scans_everything_when_absent() {
        let w = setup();
        let line = "GET /assets/app.js 200\n";
        let reps = 10_000_000 / line.len() as u64;
        for i in 0..5 {
            let blob = w.blob.clone();
            let client = w.client.clone();
            let key = format!("big-{i}");
            // The needle hides near the front of the first object only.
            let body = if i == 0 {
                Payload::concat([
                    Payload::from_static(b"ERROR boom 500\n"),
                    Payload::synthetic(line, reps),
                ])
            } else {
                Payload::synthetic(line, reps)
            };
            w.sim.block_on(async move {
                blob.put(&client, "logs", &key, body).await.unwrap();
            });
        }
        let total: u64 = 5 * reps * line.len() as u64 + 15;
        let hit = run_query(
            &w,
            QuerySpec::new("logs", "big-", Aggregate::Exists("ERROR".into())),
        )
        .unwrap();
        assert_eq!(hit.rows, vec![(String::new(), 1.0)]);
        assert!(
            hit.bytes_scanned < total / 2,
            "short-circuit scanned {} of {total} bytes",
            hit.bytes_scanned
        );
        // An absent needle cannot short-circuit: the scan covers every
        // byte and reports 0.
        let miss = run_query(
            &w,
            QuerySpec::new("logs", "big-", Aggregate::Exists("NOPE".into())),
        )
        .unwrap();
        assert_eq!(miss.rows, vec![(String::new(), 0.0)]);
        assert_eq!(miss.bytes_scanned, total);
    }

    #[test]
    fn parallelism_scales_with_bytes() {
        let w = setup();
        // Shrink partitions so ~100 MB of input recruits several workers.
        let mut profile = QueryProfile::aws_2018().exact();
        profile.partition_bytes = 16 * 1024 * 1024;
        let fabric = Fabric::new(&w.sim, NetProfile::aws_2018().exact(), Recorder::new());
        let query = QueryService::new(
            &w.sim,
            &fabric,
            &w.blob,
            profile,
            Rc::new(PriceBook::aws_2018()),
            w.ledger.clone(),
            Recorder::new(),
        );
        // ~100 MB across 8 objects.
        let lines_per_object = 900_000u64;
        for i in 0..8 {
            let blob = w.blob.clone();
            let client = w.client.clone();
            let key = format!("big-{i}");
            w.sim.block_on(async move {
                let line = "GET /path 200\n".repeat(lines_per_object as usize);
                blob.put(&client, "logs", &key, Bytes::from(line.into_bytes()))
                    .await
                    .unwrap();
            });
        }
        let c = w.client.clone();
        let out = w
            .sim
            .block_on(async move {
                query
                    .run(&c, QuerySpec::new("logs", "big-", Aggregate::CountAll))
                    .await
            })
            .unwrap();
        assert_eq!(out.rows[0].1, (8 * lines_per_object) as f64);
        // 100.8 MB over 16 MB partitions -> 7 workers.
        assert_eq!(out.workers, 7);
        // Planning (1 s) + the streamed scan: 7 workers each pull their
        // ~14 MB through a pipeline of concurrent 8 MB range reads
        // (53 ms request + 41 MB/s per connection) while folding chunks
        // at 1.6 Gbps — transfer and scan overlap, so the whole thing
        // lands well under two seconds, far below what dragging 100 MB
        // through a single Lambda's 538 Mbps shared NIC would cost.
        assert!(
            out.duration < SimDuration::from_secs(2),
            "took {}",
            out.duration
        );
    }
}
