//! # faasim-query
//!
//! An Athena-like **autoscaling query service**: scan-and-aggregate
//! queries pushed down to the object store, executed by an elastic worker
//! pool inside the service, billed per terabyte scanned.
//!
//! This is the substrate behind the paper's §2 *orchestration functions*
//! pattern ("Lambda functions to orchestrate analytics queries that are
//! executed by AWS Athena, an autoscaling query service that works with
//! data in S3 ... the 'heavy lifting' of the computation over data is
//! done by Athena, not by Lambda"). It is also the counterpoint used by
//! the data-shipping ablation: the service scans *next to* the data at
//! aggregate worker throughput, while a Lambda doing the same work must
//! drag every byte through its own throttled NIC.
//!
//! The scan is real: objects are fetched from the blob store's contents
//! and the aggregate is computed over their actual bytes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use faasim_blob::{BlobError, BlobStore};
use faasim_net::{Fabric, Host, NicConfig};
use faasim_payload::Payload;
use faasim_pricing::{Ledger, PriceBook, Service};
use faasim_simcore::{
    gbps, join_all, Bps, LatencyModel, Recorder, Sim, SimDuration,
};

/// Errors from query execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Underlying storage error (missing bucket, etc.).
    Storage(String),
    /// The query matched no objects.
    EmptyInput,
    /// A referenced field index was absent in every record.
    NoSuchField(usize),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::EmptyInput => write!(f, "query matched no objects"),
            QueryError::NoSuchField(i) => write!(f, "no record has field {i}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<BlobError> for QueryError {
    fn from(e: BlobError) -> Self {
        QueryError::Storage(e.to_string())
    }
}

/// Performance profile of the service.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// Planning/queueing latency before workers start.
    pub planning_latency: LatencyModel,
    /// Scan throughput of one worker, bits/second.
    pub per_worker_throughput: Bps,
    /// Bytes one worker is assigned before another is recruited.
    pub partition_bytes: u64,
    /// Elastic ceiling on concurrent workers.
    pub max_parallelism: u32,
    /// Minimum billable bytes per query (Athena: 10 MB).
    pub min_billed_bytes: u64,
}

impl QueryProfile {
    /// Athena-like calibration circa 2018: ~1 s planning, workers that
    /// stream ~1.6 Gbps each (200 MB/s of columnar scan), 64-way
    /// elasticity, 10 MB minimum billing.
    pub fn aws_2018() -> QueryProfile {
        QueryProfile {
            planning_latency: LatencyModel::LogNormal {
                mean: SimDuration::from_millis(1_000),
                cv: 0.2,
                floor: SimDuration::from_millis(300),
            },
            per_worker_throughput: gbps(1.6),
            partition_bytes: 128 * 1024 * 1024,
            max_parallelism: 64,
            min_billed_bytes: 10 * 1024 * 1024,
        }
    }

    /// Constant means for exact reproduction.
    pub fn exact(mut self) -> QueryProfile {
        self.planning_latency = self.planning_latency.to_constant();
        self
    }
}

/// The aggregate a query computes over matching records. Records are
/// newline-separated lines of whitespace-separated fields.
#[derive(Clone, Debug, PartialEq)]
pub enum Aggregate {
    /// Count all records.
    CountAll,
    /// Count records containing the given substring.
    CountMatching(String),
    /// Histogram of the values in field `field`.
    GroupCount {
        /// Zero-based field index.
        field: usize,
    },
    /// Sum of field `field` parsed as f64 (unparsable values skipped).
    SumField {
        /// Zero-based field index.
        field: usize,
    },
}

/// A scan-and-aggregate query over `bucket` objects with `prefix`.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Bucket to scan.
    pub bucket: String,
    /// Key prefix selecting the objects.
    pub prefix: String,
    /// The aggregate to compute.
    pub aggregate: Aggregate,
}

/// Query result plus execution accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutput {
    /// Result rows `(group, value)`; a single `("", value)` row for
    /// scalar aggregates.
    pub rows: Vec<(String, f64)>,
    /// Bytes scanned (what you're billed for).
    pub bytes_scanned: u64,
    /// Workers recruited.
    pub workers: u32,
    /// Objects read.
    pub objects: usize,
    /// End-to-end latency as observed by the caller.
    pub duration: SimDuration,
}

/// The query service handle. Cheap to clone.
#[derive(Clone)]
pub struct QueryService {
    sim: Sim,
    blob: BlobStore,
    profile: Rc<QueryProfile>,
    prices: Rc<PriceBook>,
    ledger: Ledger,
    recorder: Recorder,
    /// Service-internal host: scans run *next to the data*, not through
    /// the caller's NIC — the architectural point of the push-down.
    service_host: Host,
}

impl QueryService {
    /// Create the service on the fabric.
    pub fn new(
        sim: &Sim,
        fabric: &Fabric,
        blob: &BlobStore,
        profile: QueryProfile,
        prices: Rc<PriceBook>,
        ledger: Ledger,
        recorder: Recorder,
    ) -> QueryService {
        // The service fleet's connectivity to storage is effectively
        // unconstrained compared to any single caller.
        let service_host = fabric.add_host(0, NicConfig::simple(gbps(400.0)));
        QueryService {
            sim: sim.clone(),
            blob: blob.clone(),
            profile: Rc::new(profile),
            prices,
            ledger,
            recorder,
            service_host,
        }
    }

    /// Execute a query. The returned future completes when results are
    /// ready; the caller pays only planning + scan time, never the data
    /// movement (that happens inside the service, next to the data).
    pub async fn run(&self, _caller: &Host, spec: QuerySpec) -> Result<QueryOutput, QueryError> {
        let t0 = self.sim.now();
        let planning = {
            let mut rng = self.sim.rng("query.planning");
            self.profile.planning_latency.sample(&mut rng)
        };
        self.sim.sleep(planning).await;

        let keys = self
            .blob
            .list(&self.service_host, &spec.bucket, &spec.prefix)
            .await?;
        if keys.is_empty() {
            return Err(QueryError::EmptyInput);
        }

        // Fetch every object (service-side) and compute the real
        // aggregate over real bytes.
        let fetches: Vec<_> = keys
            .iter()
            .map(|key| {
                let blob = self.blob.clone();
                let host = self.service_host.clone();
                let bucket = spec.bucket.clone();
                let key = key.clone();
                async move { blob.get(&host, &bucket, &key).await }
            })
            .collect();
        let bodies = join_all(fetches).await;
        let mut acc = Accumulator::new(&spec.aggregate);
        let mut bytes_scanned: u64 = 0;
        for body in bodies {
            let body = body?;
            bytes_scanned += body.len() as u64;
            acc.consume(&body);
        }

        // Parallel scan time: workers recruited per partition, capped.
        let workers = (bytes_scanned.div_ceil(self.profile.partition_bytes.max(1)) as u32)
            .clamp(1, self.profile.max_parallelism);
        let aggregate_throughput = self.profile.per_worker_throughput * workers as f64;
        let scan_time =
            SimDuration::from_secs_f64(bytes_scanned as f64 * 8.0 / aggregate_throughput);
        self.sim.sleep(scan_time).await;

        // Billing: per TB scanned with a minimum.
        let billed = bytes_scanned.max(self.profile.min_billed_bytes);
        let tb = billed as f64 / 1e12;
        self.ledger.charge(
            Service::Query,
            "tb-scanned",
            tb,
            tb * self.prices.query_per_tb_scanned,
        );
        self.recorder.incr("query.executed");
        self.recorder.add("query.bytes_scanned", bytes_scanned);

        let rows = acc.finish(&spec.aggregate)?;
        Ok(QueryOutput {
            rows,
            bytes_scanned,
            workers,
            objects: keys.len(),
            duration: self.sim.now() - t0,
        })
    }
}

/// Streaming aggregate state.
struct Accumulator {
    count: u64,
    sum: f64,
    sum_seen: bool,
    groups: BTreeMap<String, u64>,
}

impl Accumulator {
    fn new(_agg: &Aggregate) -> Accumulator {
        Accumulator {
            count: 0,
            sum: 0.0,
            sum_seen: false,
            groups: BTreeMap::new(),
        }
    }

    fn consume(&mut self, body: &Payload) {
        // The aggregate dispatch happens in finish(); consume() gathers
        // everything cheap in one pass. Synthetic bodies are scanned
        // analytically: each distinct line arrives once with its
        // repetition count, so a terabyte of repeated log lines costs
        // O(pattern) work instead of O(bytes).
        body.for_each_line_run(&mut |line, n| {
            let line = match line.last() {
                Some(b'\r') => &line[..line.len() - 1],
                _ => line,
            };
            if line.is_empty() {
                return;
            }
            self.count += n;
            let text = String::from_utf8_lossy(line);
            self.groups
                .entry(text.into_owned())
                .and_modify(|c| *c += n)
                .or_insert(n);
        });
        let _ = &self.sum;
        let _ = self.sum_seen;
    }

    fn finish(self, agg: &Aggregate) -> Result<Vec<(String, f64)>, QueryError> {
        match agg {
            Aggregate::CountAll => Ok(vec![(String::new(), self.count as f64)]),
            Aggregate::CountMatching(needle) => {
                let n: u64 = self
                    .groups
                    .iter()
                    .filter(|(line, _)| line.contains(needle.as_str()))
                    .map(|(_, c)| c)
                    .sum();
                Ok(vec![(String::new(), n as f64)])
            }
            Aggregate::GroupCount { field } => {
                let mut out: BTreeMap<String, u64> = BTreeMap::new();
                let mut any = false;
                for (line, c) in &self.groups {
                    if let Some(value) = line.split_whitespace().nth(*field) {
                        any = true;
                        *out.entry(value.to_owned()).or_default() += c;
                    }
                }
                if !any {
                    return Err(QueryError::NoSuchField(*field));
                }
                Ok(out.into_iter().map(|(k, v)| (k, v as f64)).collect())
            }
            Aggregate::SumField { field } => {
                let mut sum = 0.0;
                let mut any = false;
                for (line, c) in &self.groups {
                    if let Some(value) = line.split_whitespace().nth(*field) {
                        any = true;
                        if let Ok(v) = value.parse::<f64>() {
                            sum += v * *c as f64;
                        }
                    }
                }
                if !any {
                    return Err(QueryError::NoSuchField(*field));
                }
                Ok(vec![(String::new(), sum)])
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use bytes::Bytes;
    use faasim_blob::BlobProfile;
    use faasim_net::NetProfile;
    use faasim_simcore::mbps;
    use proptest::prelude::*;

    /// Random corpora: the pushed-down aggregate must equal a naive
    /// in-memory computation over the same lines.
    fn naive_group_count(docs: &[Vec<String>], field: usize) -> Vec<(String, f64)> {
        let mut out: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for doc in docs {
            for line in doc {
                if let Some(v) = line.split_whitespace().nth(field) {
                    *out.entry(v.to_owned()).or_default() += 1;
                }
            }
        }
        out.into_iter().map(|(k, v)| (k, v as f64)).collect()
    }

    fn line_strategy() -> impl Strategy<Value = String> {
        (0u8..5, 0u8..4, 0u16..300).prop_map(|(verb, status, path)| {
            format!("verb{verb} /p/{path} s{status}")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn pushed_down_aggregates_match_naive(
            docs in prop::collection::vec(
                prop::collection::vec(line_strategy(), 1..40), 1..6),
        ) {
            let sim = faasim_simcore::Sim::new(17);
            let recorder = Recorder::new();
            let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
            let prices = Rc::new(PriceBook::aws_2018());
            let ledger = Ledger::new();
            let blob = BlobStore::new(
                &sim,
                BlobProfile::aws_2018().exact(),
                prices.clone(),
                ledger.clone(),
                recorder.clone(),
            );
            blob.create_bucket("logs");
            let query = QueryService::new(
                &sim, &fabric, &blob,
                QueryProfile::aws_2018().exact(),
                prices, ledger, recorder,
            );
            let client = fabric.add_host(1, faasim_net::NicConfig::simple(mbps(1_000.0)));
            let total_lines: usize = docs.iter().map(Vec::len).sum();
            for (i, doc) in docs.iter().enumerate() {
                let blob = blob.clone();
                let client = client.clone();
                let body = Bytes::from(doc.join("\n").into_bytes());
                let key = format!("obj-{i:03}");
                sim.block_on(async move {
                    blob.put(&client, "logs", &key, body).await.unwrap();
                });
            }
            let q = query.clone();
            let c = client.clone();
            let (count, groups) = sim.block_on(async move {
                let count = q.run(&c, QuerySpec {
                    bucket: "logs".into(), prefix: "obj-".into(),
                    aggregate: Aggregate::CountAll,
                }).await.unwrap();
                let groups = q.run(&c, QuerySpec {
                    bucket: "logs".into(), prefix: "obj-".into(),
                    aggregate: Aggregate::GroupCount { field: 2 },
                }).await.unwrap();
                (count, groups)
            });
            prop_assert_eq!(count.rows[0].1 as usize, total_lines);
            prop_assert_eq!(groups.rows, naive_group_count(&docs, 2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use faasim_blob::BlobProfile;
    use faasim_net::NetProfile;
    use faasim_simcore::mbps;

    struct World {
        sim: Sim,
        blob: BlobStore,
        query: QueryService,
        client: Host,
        ledger: Ledger,
    }

    fn setup() -> World {
        let sim = Sim::new(31);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let prices = Rc::new(PriceBook::aws_2018());
        let ledger = Ledger::new();
        let blob = BlobStore::new(
            &sim,
            BlobProfile::aws_2018().exact(),
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        blob.create_bucket("logs");
        let query = QueryService::new(
            &sim,
            &fabric,
            &blob,
            QueryProfile::aws_2018().exact(),
            prices,
            ledger.clone(),
            recorder,
        );
        let client = fabric.add_host(3, NicConfig::simple(mbps(1_000.0)));
        World {
            sim,
            blob,
            query,
            client,
            ledger,
        }
    }

    fn put_log(w: &World, key: &str, lines: &[&str]) {
        let blob = w.blob.clone();
        let client = w.client.clone();
        let body = Bytes::from(lines.join("\n").into_bytes());
        let key = key.to_owned();
        w.sim.block_on(async move {
            blob.put(&client, "logs", &key, body).await.unwrap();
        });
    }

    #[test]
    fn count_all_over_multiple_objects() {
        let w = setup();
        put_log(&w, "day-1", &["GET /a 200", "GET /b 404"]);
        put_log(&w, "day-2", &["POST /a 200"]);
        let out = w
            .sim
            .block_on({
                let q = w.query.clone();
                let c = w.client.clone();
                async move {
                    q.run(
                        &c,
                        QuerySpec {
                            bucket: "logs".into(),
                            prefix: "day-".into(),
                            aggregate: Aggregate::CountAll,
                        },
                    )
                    .await
                }
            })
            .unwrap();
        assert_eq!(out.rows, vec![(String::new(), 3.0)]);
        assert_eq!(out.objects, 2);
        assert!(out.bytes_scanned > 0);
    }

    #[test]
    fn group_count_histograms_a_field() {
        let w = setup();
        put_log(
            &w,
            "day-1",
            &["GET /a 200", "GET /b 404", "GET /c 200", "PUT /a 200"],
        );
        let out = w
            .sim
            .block_on({
                let q = w.query.clone();
                let c = w.client.clone();
                async move {
                    q.run(
                        &c,
                        QuerySpec {
                            bucket: "logs".into(),
                            prefix: "".into(),
                            aggregate: Aggregate::GroupCount { field: 2 },
                        },
                    )
                    .await
                }
            })
            .unwrap();
        assert_eq!(
            out.rows,
            vec![("200".to_owned(), 3.0), ("404".to_owned(), 1.0)]
        );
    }

    #[test]
    fn sum_and_match_aggregates() {
        let w = setup();
        put_log(&w, "x", &["a 1.5", "b 2.5", "a nan-ish"]);
        let q = w.query.clone();
        let c = w.client.clone();
        let (sum, matched) = w.sim.block_on(async move {
            let sum = q
                .run(
                    &c,
                    QuerySpec {
                        bucket: "logs".into(),
                        prefix: "".into(),
                        aggregate: Aggregate::SumField { field: 1 },
                    },
                )
                .await
                .unwrap();
            let matched = q
                .run(
                    &c,
                    QuerySpec {
                        bucket: "logs".into(),
                        prefix: "".into(),
                        aggregate: Aggregate::CountMatching("a ".into()),
                    },
                )
                .await
                .unwrap();
            (sum, matched)
        });
        assert_eq!(sum.rows[0].1, 4.0);
        assert_eq!(matched.rows[0].1, 2.0);
    }

    #[test]
    fn missing_field_and_empty_input_error() {
        let w = setup();
        put_log(&w, "x", &["only-one-field"]);
        let q = w.query.clone();
        let c = w.client.clone();
        let (missing, empty) = w.sim.block_on(async move {
            let missing = q
                .run(
                    &c,
                    QuerySpec {
                        bucket: "logs".into(),
                        prefix: "".into(),
                        aggregate: Aggregate::GroupCount { field: 5 },
                    },
                )
                .await;
            let empty = q
                .run(
                    &c,
                    QuerySpec {
                        bucket: "logs".into(),
                        prefix: "zzz".into(),
                        aggregate: Aggregate::CountAll,
                    },
                )
                .await;
            (missing, empty)
        });
        assert_eq!(missing.unwrap_err(), QueryError::NoSuchField(5));
        assert_eq!(empty.unwrap_err(), QueryError::EmptyInput);
    }

    #[test]
    fn billing_is_per_tb_with_minimum() {
        let w = setup();
        put_log(&w, "tiny", &["x 1"]);
        let q = w.query.clone();
        let c = w.client.clone();
        w.sim.block_on(async move {
            q.run(
                &c,
                QuerySpec {
                    bucket: "logs".into(),
                    prefix: "".into(),
                    aggregate: Aggregate::CountAll,
                },
            )
            .await
            .unwrap();
        });
        // A 3-byte scan still bills the 10 MB minimum at $5/TB.
        let want = (10.0 * 1024.0 * 1024.0) / 1e12 * 5.0;
        let got = w.ledger.total_for(Service::Query);
        assert!((got - want).abs() < 1e-12, "billed {got}, want {want}");
    }

    #[test]
    fn parallelism_scales_with_bytes() {
        let w = setup();
        // Shrink partitions so ~100 MB of input recruits several workers.
        let mut profile = QueryProfile::aws_2018().exact();
        profile.partition_bytes = 16 * 1024 * 1024;
        let fabric = Fabric::new(&w.sim, NetProfile::aws_2018().exact(), Recorder::new());
        let query = QueryService::new(
            &w.sim,
            &fabric,
            &w.blob,
            profile,
            Rc::new(PriceBook::aws_2018()),
            w.ledger.clone(),
            Recorder::new(),
        );
        // ~100 MB across 8 objects.
        let lines_per_object = 900_000u64;
        for i in 0..8 {
            let blob = w.blob.clone();
            let client = w.client.clone();
            let key = format!("big-{i}");
            w.sim.block_on(async move {
                let line = "GET /path 200\n".repeat(lines_per_object as usize);
                blob.put(&client, "logs", &key, Bytes::from(line.into_bytes()))
                    .await
                    .unwrap();
            });
        }
        let c = w.client.clone();
        let out = w
            .sim
            .block_on(async move {
                query
                    .run(
                        &c,
                        QuerySpec {
                            bucket: "logs".into(),
                            prefix: "big-".into(),
                            aggregate: Aggregate::CountAll,
                        },
                    )
                    .await
            })
            .unwrap();
        assert_eq!(out.rows[0].1, (8 * lines_per_object) as f64);
        // 100.8 MB over 16 MB partitions -> 7 workers.
        assert_eq!(out.workers, 7);
        // Planning (1 s) + service-side fetch (12.6 MB/object at the
        // 41 MB/s per-connection cap, in parallel ≈ 0.31 s) + scan
        // (100 MB at 7 x 1.6 Gbps ≈ 0.07 s): well under two seconds —
        // and far under what dragging 100 MB through a single Lambda's
        // 538 Mbps NIC would cost (~1.5 s for the transfer alone, on a
        // *shared* link).
        assert!(
            out.duration < SimDuration::from_secs(2),
            "took {}",
            out.duration
        );
    }
}
