//! Per-aggregate **scan kernels**: the operator-specialized fold each
//! streamed chunk lands in.
//!
//! The old one-size-fits-all accumulator built a full distinct-line
//! `BTreeMap<String, u64>` — a `String` allocation per distinct line —
//! regardless of the aggregate, then dispatched in `finish()`. Here each
//! [`crate::Aggregate`] gets its own kernel behind the [`ScanKernel`]
//! trait:
//!
//! - [`Aggregate::CountAll`](crate::Aggregate::CountAll) is pure
//!   line-count arithmetic: zero allocation, zero per-line state;
//! - [`Aggregate::CountMatching`](crate::Aggregate::CountMatching) is a
//!   byte-level substring test per line run — no histogram;
//! - [`Aggregate::GroupCount`](crate::Aggregate::GroupCount) keys only
//!   the extracted field *value*, never the whole line;
//! - [`Aggregate::SumField`](crate::Aggregate::SumField) keeps a running
//!   sum and a seen-flag — no map at all;
//! - [`Aggregate::Exists`](crate::Aggregate::Exists) flips a bool and
//!   **saturates**, letting the pipeline cancel unfetched partitions.
//!
//! Kernels consume *line runs* — `(line, multiplicity)` visits from the
//! payload crate's analytic scanner — so a `Concat` of
//! `Synthetic{pattern × n}` bodies folds per-pattern results scaled by
//! `n` without the kernel ever touching the repeated bytes. That is the
//! multi-pattern `GROUP BY` cardinality shortcut: a terabyte of repeated
//! log lines costs O(patterns) kernel work.

use std::collections::BTreeMap;

use crate::{Aggregate, QueryError};

/// A streaming aggregate fold. One kernel instance is shared by every
/// scan worker (the simulation is single-threaded, so interleaving is
/// deterministic); results are order-independent multiset folds.
pub trait ScanKernel {
    /// Fold one non-empty line (trailing `\r` already trimmed) that
    /// occurs `n` times.
    fn visit(&mut self, line: &[u8], n: u64);

    /// True once the kernel provably cannot change its answer — the
    /// pipeline stops issuing fetches and cancels unfetched partitions.
    fn saturated(&self) -> bool {
        false
    }

    /// Produce the result rows.
    fn finish(self: Box<Self>) -> Result<Vec<(String, f64)>, QueryError>;
}

/// Build the kernel for an aggregate. `limit` caps how many matching
/// records the counting aggregates fold before saturating; it is
/// ignored by `GroupCount`/`SumField` (their partial results would be
/// scan-order-dependent) and by `Exists` (which saturates on its own).
pub fn kernel_for(agg: &Aggregate, limit: Option<u64>) -> Box<dyn ScanKernel> {
    match agg {
        Aggregate::CountAll => Box::new(CountAll { count: 0, limit }),
        Aggregate::CountMatching(needle) => Box::new(CountMatching {
            needle: needle.as_bytes().to_vec(),
            count: 0,
            limit,
        }),
        Aggregate::GroupCount { field } => Box::new(GroupCount {
            field: *field,
            groups: BTreeMap::new(),
            matched: false,
        }),
        Aggregate::SumField { field } => Box::new(SumField {
            field: *field,
            sum: 0.0,
            matched: false,
        }),
        Aggregate::Exists(needle) => Box::new(Exists {
            needle: needle.as_bytes().to_vec(),
            found: false,
        }),
    }
}

/// Byte-level substring test (what `str::contains` does for the ASCII
/// corpora these queries scan). An empty needle matches everything.
fn contains(hay: &[u8], needle: &[u8]) -> bool {
    needle.is_empty() || hay.windows(needle.len()).any(|w| w == needle)
}

/// The nth whitespace-separated field, decoded like the record model
/// specifies (lossy UTF-8, Unicode whitespace).
fn nth_field(line: &[u8], field: usize) -> Option<String> {
    let text = String::from_utf8_lossy(line);
    text.split_whitespace().nth(field).map(str::to_owned)
}

/// Clamped add: the counting kernels never report more than `limit`
/// records, so an in-flight chunk folded after saturation cannot
/// overshoot the answer.
fn add_clamped(count: u64, n: u64, limit: Option<u64>) -> u64 {
    let next = count.saturating_add(n);
    match limit {
        Some(l) => next.min(l),
        None => next,
    }
}

struct CountAll {
    count: u64,
    limit: Option<u64>,
}

impl ScanKernel for CountAll {
    fn visit(&mut self, _line: &[u8], n: u64) {
        self.count = add_clamped(self.count, n, self.limit);
    }

    fn saturated(&self) -> bool {
        self.limit.is_some_and(|l| self.count >= l)
    }

    fn finish(self: Box<Self>) -> Result<Vec<(String, f64)>, QueryError> {
        Ok(vec![(String::new(), self.count as f64)])
    }
}

struct CountMatching {
    needle: Vec<u8>,
    count: u64,
    limit: Option<u64>,
}

impl ScanKernel for CountMatching {
    fn visit(&mut self, line: &[u8], n: u64) {
        if contains(line, &self.needle) {
            self.count = add_clamped(self.count, n, self.limit);
        }
    }

    fn saturated(&self) -> bool {
        self.limit.is_some_and(|l| self.count >= l)
    }

    fn finish(self: Box<Self>) -> Result<Vec<(String, f64)>, QueryError> {
        Ok(vec![(String::new(), self.count as f64)])
    }
}

struct GroupCount {
    field: usize,
    groups: BTreeMap<String, u64>,
    matched: bool,
}

impl ScanKernel for GroupCount {
    fn visit(&mut self, line: &[u8], n: u64) {
        if let Some(value) = nth_field(line, self.field) {
            self.matched = true;
            *self.groups.entry(value).or_default() += n;
        }
    }

    fn finish(self: Box<Self>) -> Result<Vec<(String, f64)>, QueryError> {
        if !self.matched {
            return Err(QueryError::NoSuchField(self.field));
        }
        Ok(self
            .groups
            .into_iter()
            .map(|(k, v)| (k, v as f64))
            .collect())
    }
}

struct SumField {
    field: usize,
    sum: f64,
    matched: bool,
}

impl ScanKernel for SumField {
    fn visit(&mut self, line: &[u8], n: u64) {
        if let Some(value) = nth_field(line, self.field) {
            self.matched = true;
            if let Ok(v) = value.parse::<f64>() {
                self.sum += v * n as f64;
            }
        }
    }

    fn finish(self: Box<Self>) -> Result<Vec<(String, f64)>, QueryError> {
        if !self.matched {
            return Err(QueryError::NoSuchField(self.field));
        }
        Ok(vec![(String::new(), self.sum)])
    }
}

struct Exists {
    needle: Vec<u8>,
    found: bool,
}

impl ScanKernel for Exists {
    fn visit(&mut self, line: &[u8], _n: u64) {
        if !self.found && contains(line, &self.needle) {
            self.found = true;
        }
    }

    fn saturated(&self) -> bool {
        self.found
    }

    fn finish(self: Box<Self>) -> Result<Vec<(String, f64)>, QueryError> {
        Ok(vec![(String::new(), if self.found { 1.0 } else { 0.0 })])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_all_clamps_at_limit() {
        let mut k = kernel_for(&Aggregate::CountAll, Some(10));
        k.visit(b"x", 7);
        assert!(!k.saturated());
        k.visit(b"x", 7); // overshoot clamps to exactly the limit
        assert!(k.saturated());
        assert_eq!(k.finish().unwrap(), vec![(String::new(), 10.0)]);
    }

    #[test]
    fn count_matching_is_byte_level() {
        let mut k = kernel_for(&Aggregate::CountMatching("b c".into()), None);
        k.visit(b"a b c", 3);
        k.visit(b"a bc", 5);
        k.visit(b"zzz", 1);
        assert_eq!(k.finish().unwrap(), vec![(String::new(), 3.0)]);
        // Empty needle matches every line, like `str::contains("")`.
        let mut k = kernel_for(&Aggregate::CountMatching(String::new()), None);
        k.visit(b"anything", 4);
        assert_eq!(k.finish().unwrap(), vec![(String::new(), 4.0)]);
    }

    #[test]
    fn group_count_keys_only_the_field() {
        let mut k = kernel_for(&Aggregate::GroupCount { field: 1 }, None);
        k.visit(b"GET /a 200", 2);
        k.visit(b"PUT /a 200", 1);
        k.visit(b"GET /b 404", 1);
        assert_eq!(
            k.finish().unwrap(),
            vec![("/a".to_owned(), 3.0), ("/b".to_owned(), 1.0)]
        );
    }

    #[test]
    fn missing_field_surfaces_after_finish() {
        let mut k = kernel_for(&Aggregate::SumField { field: 3 }, None);
        k.visit(b"a b", 1);
        assert_eq!(k.finish().unwrap_err(), QueryError::NoSuchField(3));
    }

    #[test]
    fn exists_saturates_on_first_match() {
        let mut k = kernel_for(&Aggregate::Exists("404".into()), None);
        k.visit(b"GET / 200", 9);
        assert!(!k.saturated());
        k.visit(b"GET /x 404", 1);
        assert!(k.saturated());
        assert_eq!(k.finish().unwrap(), vec![(String::new(), 1.0)]);
    }
}
