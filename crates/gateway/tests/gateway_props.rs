//! Property tests for admission accounting: for any seeded offered
//! load, tenant mix, and platform fault rate, every offered request is
//! accounted to exactly one outcome —
//! `offered == admitted + rate_shed + load_shed + breaker_rejected` —
//! token buckets stay within `[0, burst]` at every probe, and the
//! gateway always drains.

use faasim::{Cloud, CloudProfile};
use faasim_faas::{FaasFaults, FunctionSpec};
use faasim_gateway::{Gateway, GatewayConfig, TenantConfig};
use faasim_payload::Payload;
use faasim_simcore::{join_all, SimDuration};
use proptest::prelude::*;

/// One generated tenant: (rate, burst, max_concurrent, priority).
type TenantTuple = (f64, f64, usize, u8);

fn run_offered_load(seed: u64, tenants: &[TenantTuple], schedule: &[(u64, u64)], kill_prob: f64) {
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    cloud.faas.set_faults(FaasFaults { kill_prob });
    cloud.faas.register(FunctionSpec::new(
        "work",
        192,
        SimDuration::from_secs(30),
        |ctx, _payload| async move {
            ctx.cpu(SimDuration::from_millis(15)).await;
            Ok(Payload::inline("ok"))
        },
    ));
    let tenant_cfgs: Vec<TenantConfig> = tenants
        .iter()
        .map(|&(rate, burst, max_concurrent, priority)| TenantConfig {
            rate,
            burst,
            max_concurrent,
            priority,
        })
        .collect();
    let n_tenants = tenant_cfgs.len() as u64;
    let mut cfg = GatewayConfig::new(tenant_cfgs);
    // Small enough that dense schedules cross the shed watermarks.
    cfg.max_in_flight = 8;
    let gw = Gateway::new(
        &cloud.sim,
        &cloud.faas,
        cloud.ledger.clone(),
        cloud.recorder.clone(),
        &cloud.prices,
        cfg,
    );

    let gw2 = gw.clone();
    let sim = cloud.sim.clone();
    let sched = schedule.to_vec();
    let bucket_bound_ok = cloud.sim.block_on(async move {
        let calls: Vec<_> = sched
            .into_iter()
            .map(|(pick, delay_ms)| {
                let gw = gw2.clone();
                let sim = sim.clone();
                async move {
                    sim.sleep(SimDuration::from_millis(delay_ms)).await;
                    let tenant = (pick % n_tenants) as u32;
                    let _ = gw.invoke(tenant, "work", Payload::inline("x")).await;
                    // Probe the bucket mid-run, right after a decision.
                    let level = gw.bucket_level(tenant);
                    level >= -1e-9 && level <= gw.bucket_burst(tenant) + 1e-9
                }
            })
            .collect();
        join_all(calls).await.into_iter().all(|ok| ok)
    });
    prop_assert!(bucket_bound_ok, "a bucket left [0, burst] mid-run");

    let mut offered = 0u64;
    for t in 0..gw.tenants() {
        let st = gw.tenant_stats(t);
        prop_assert!(st.conserved(), "tenant {} violates conservation: {:?}", t, st);
        prop_assert_eq!(
            st.succeeded + st.failed,
            st.admitted,
            "every admitted call must complete"
        );
        prop_assert_eq!(st.in_flight, 0, "tenant {} did not drain", t);
        let level = gw.bucket_level(t);
        prop_assert!(
            level >= -1e-9 && level <= gw.bucket_burst(t) + 1e-9,
            "tenant {} bucket level {} outside [0, {}]",
            t,
            level,
            gw.bucket_burst(t)
        );
        offered += st.offered;
    }
    prop_assert_eq!(offered, schedule.len() as u64, "no request went missing");
    prop_assert!(gw.stats().totals.conserved(), "aggregate violates conservation");
    prop_assert_eq!(gw.in_flight(), 0, "gateway did not drain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn admission_accounting_conserves_every_request(
        seed in 0u64..10_000,
        tenants in proptest::collection::vec(
            (1.0f64..50.0, 1.0f64..40.0, 1usize..6, 0u8..4),
            1..5,
        ),
        schedule in proptest::collection::vec((0u64..1_000, 0u64..400), 1..160),
        kill_prob in 0.0f64..0.4,
    ) {
        run_offered_load(seed, &tenants, &schedule, kill_prob);
    }
}
