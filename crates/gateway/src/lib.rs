//! A multi-tenant front door for the simulated FaaS platform.
//!
//! The paper's "two steps back" critique includes the missing platform
//! story for multi-tenant contention: nothing stands between one
//! tenant's burst and everyone else's latency. This crate is that
//! missing tier — a gateway every invocation traverses, owning:
//!
//! - **per-tenant token buckets** (rate + burst, refilled lazily on sim
//!   time) and a **per-tenant concurrency semaphore**;
//! - a **load shedder** that sheds the lowest-priority tiers first as
//!   gateway-wide in-flight crosses per-tier watermarks;
//! - **per-tenant circuit breakers** (reusing `faasim-resilience`) so a
//!   tenant whose functions are crashing stops consuming admission
//!   slots;
//! - **gateway-path billing** into the ledger, so overload economics
//!   show up in $/hr (shed traffic still bills).
//!
//! Admission refusals are typed [`GatewayError`]s a [`RetryingGateway`]
//! backs off on; everything is deterministic in simulation time, so
//! replay digests stay byte-identical.

#![warn(missing_docs)]

mod bucket;
mod gateway;
mod retrying;
mod stats;

pub use bucket::TokenBucket;
pub use gateway::{Admission, Gateway, GatewayConfig, GatewayError, TenantConfig, TIERS};
pub use retrying::RetryingGateway;
pub use stats::{GatewayStats, TenantStats};
