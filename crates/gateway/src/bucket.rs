//! A deterministic token bucket refilled on simulation time.
//!
//! The bucket is refilled *lazily*: instead of a background task adding
//! tokens on a timer (which would bloat the event queue with one wakeup
//! per tenant per tick), the level is recomputed from the elapsed sim
//! time whenever the bucket is consulted. The result is bit-identical
//! to continuous refill and costs one f64 multiply per decision.

use faasim_simcore::{SimDuration, SimTime};

/// A token bucket: `rate` tokens per second of capacity, up to `burst`
/// tokens banked. One admission costs one token.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    refilled_at: SimTime,
}

impl TokenBucket {
    /// A full bucket. `rate` is tokens per second (may be zero for a
    /// one-shot quota); `burst` is the capacity and must admit at least
    /// one whole token, otherwise the bucket can never admit anything.
    ///
    /// # Panics
    /// Panics on non-finite or negative `rate`, or `burst < 1`.
    pub fn new(rate: f64, burst: f64, now: SimTime) -> TokenBucket {
        assert!(rate.is_finite() && rate >= 0.0, "bad bucket rate {rate}");
        assert!(burst.is_finite() && burst >= 1.0, "bad bucket burst {burst}");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            refilled_at: now,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now == self.refilled_at {
            // Same-instant consult (bursts arriving in one event batch):
            // dt is exactly zero, skip the float math.
            return;
        }
        let dt = now.duration_since(self.refilled_at).as_secs_f64();
        self.tokens = (self.tokens + self.rate * dt).min(self.burst);
        self.refilled_at = now;
    }

    /// Take one token, or report when one will next be available. With
    /// `rate == 0` and an empty bucket the retry time saturates to
    /// [`SimTime::MAX`] ("never").
    pub fn try_take(&mut self, now: SimTime) -> Result<(), SimTime> {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err(now.saturating_add(SimDuration::from_secs_f64(deficit / self.rate)))
        }
    }

    /// Return one token (used when a request passes the bucket but is
    /// shed by a later admission stage, so the tenant's paid-for rate
    /// is not double-penalized by overload).
    pub fn put_back(&mut self) {
        self.tokens = (self.tokens + 1.0).min(self.burst);
    }

    /// Current level at `now`. Always within `[0, burst]`.
    pub fn level(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// The configured burst capacity.
    pub fn burst(&self) -> f64 {
        self.burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs_f64: f64) -> SimTime {
        SimTime::ZERO.saturating_add(SimDuration::from_secs_f64(secs_f64))
    }

    #[test]
    fn burst_then_rate_limits() {
        let mut b = TokenBucket::new(10.0, 5.0, SimTime::ZERO);
        for _ in 0..5 {
            assert!(b.try_take(SimTime::ZERO).is_ok(), "burst admits");
        }
        let retry_at = b.try_take(SimTime::ZERO).unwrap_err();
        // Empty bucket at 10/s: next token in 100 ms.
        assert_eq!(retry_at, at(0.1));
        assert!(b.try_take(at(0.099)).is_err(), "still short of a token");
        assert!(b.try_take(at(0.1)).is_ok(), "refilled on schedule");
    }

    #[test]
    fn level_never_exceeds_burst() {
        let mut b = TokenBucket::new(100.0, 3.0, SimTime::ZERO);
        assert_eq!(b.level(at(1000.0)), 3.0, "refill caps at burst");
        b.put_back();
        assert_eq!(b.level(at(1000.0)), 3.0, "put_back caps at burst");
    }

    #[test]
    fn zero_rate_is_a_one_shot_quota() {
        let mut b = TokenBucket::new(0.0, 2.0, SimTime::ZERO);
        assert!(b.try_take(SimTime::ZERO).is_ok());
        assert!(b.try_take(SimTime::ZERO).is_ok());
        assert_eq!(b.try_take(at(1e6)).unwrap_err(), SimTime::MAX, "never refills");
    }

    #[test]
    fn fractional_refill_accumulates() {
        let mut b = TokenBucket::new(2.0, 1.0, SimTime::ZERO);
        assert!(b.try_take(SimTime::ZERO).is_ok());
        assert!(b.try_take(at(0.25)).is_err(), "half a token");
        assert!(b.try_take(at(0.5)).is_ok(), "two quarter-refills make one token");
    }
}
