//! Recorder-free gateway probes, aggregated like `NicStats`: plain
//! counters the harnesses can assert on without touching the metrics
//! registry (and therefore without perturbing replay digests).

/// Admission accounting for one tenant. Every offered request lands in
/// exactly one of `admitted`, `bucket_shed`, `concurrency_shed`,
/// `load_shed`, or `breaker_rejected` — see [`TenantStats::conserved`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests that reached the front door (billed, whatever happened
    /// next).
    pub offered: u64,
    /// Requests admitted through every stage to the platform.
    pub admitted: u64,
    /// Shed by the token bucket (rate + burst exhausted).
    pub bucket_shed: u64,
    /// Shed by the per-tenant concurrency semaphore.
    pub concurrency_shed: u64,
    /// Shed by the platform-wide load shedder (priority watermark).
    pub load_shed: u64,
    /// Shed because the tenant's circuit breaker was open.
    pub breaker_rejected: u64,
    /// Admitted calls whose outcome did not count as a breaker failure.
    pub succeeded: u64,
    /// Admitted calls whose outcome counted as a breaker failure.
    pub failed: u64,
    /// Admitted calls currently in flight.
    pub in_flight: u64,
    /// High-water mark of concurrent admitted calls.
    pub peak_in_flight: u64,
}

impl TenantStats {
    /// Sheds attributable to the tenant's own rate/concurrency limits.
    pub fn rate_shed(&self) -> u64 {
        self.bucket_shed + self.concurrency_shed
    }

    /// All sheds, whatever the stage.
    pub fn shed(&self) -> u64 {
        self.rate_shed() + self.load_shed + self.breaker_rejected
    }

    /// The admission conservation law: every offered request was either
    /// admitted or shed by exactly one stage.
    pub fn conserved(&self) -> bool {
        self.offered == self.admitted + self.shed()
    }

    /// Fold another tenant's counters into this one (peaks take the
    /// max — per-tenant peaks at different instants don't sum).
    pub fn merge(&mut self, other: &TenantStats) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.bucket_shed += other.bucket_shed;
        self.concurrency_shed += other.concurrency_shed;
        self.load_shed += other.load_shed;
        self.breaker_rejected += other.breaker_rejected;
        self.succeeded += other.succeeded;
        self.failed += other.failed;
        self.in_flight += other.in_flight;
        self.peak_in_flight = self.peak_in_flight.max(other.peak_in_flight);
    }
}

/// Gateway-wide aggregate: the tenant counters folded together plus the
/// gateway-level concurrency high-water mark (which is a property of
/// the shared admission path, not a sum of per-tenant peaks).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Number of configured tenants.
    pub tenants: u32,
    /// Folded per-tenant counters (peak is the max per-tenant peak).
    pub totals: TenantStats,
    /// High-water mark of concurrent admitted calls across all tenants.
    pub peak_in_flight: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_and_merge() {
        let mut a = TenantStats {
            offered: 10,
            admitted: 6,
            bucket_shed: 2,
            concurrency_shed: 1,
            load_shed: 1,
            peak_in_flight: 3,
            ..TenantStats::default()
        };
        assert!(a.conserved());
        assert_eq!(a.rate_shed(), 3);
        let b = TenantStats {
            offered: 4,
            admitted: 3,
            breaker_rejected: 1,
            peak_in_flight: 5,
            ..TenantStats::default()
        };
        assert!(b.conserved());
        a.merge(&b);
        assert!(a.conserved());
        assert_eq!(a.offered, 14);
        assert_eq!(a.peak_in_flight, 5, "peaks take the max");
    }
}
