//! A retrying client for the gateway, mirroring
//! [`faasim_resilience::RetryingInvoker`]: typed sheds are backed off
//! on, and when the shed names the instant capacity returns (a token
//! refill, a breaker cooldown) the retry never fires earlier than that.

use std::cell::RefCell;
use std::rc::Rc;

use faasim_faas::InvokeOutcome;
use faasim_payload::Payload;
use faasim_resilience::{Deadline, RetryError, RetryPolicy};
use faasim_simcore::{Recorder, Sim, SimRng};

use crate::gateway::{Gateway, GatewayError};

/// A [`Gateway`] client that retries transient refusals (rate limits,
/// load sheds, open breakers) and transient platform failures with
/// backoff, inside a deadline budget. Cheap to clone; clones share the
/// jitter RNG stream.
#[derive(Clone)]
pub struct RetryingGateway {
    gateway: Gateway,
    sim: Sim,
    policy: RetryPolicy,
    rng: Rc<RefCell<SimRng>>,
    recorder: Recorder,
}

impl RetryingGateway {
    /// Wrap `gateway`; `label` names the jitter RNG stream.
    pub fn new(
        sim: &Sim,
        gateway: &Gateway,
        recorder: Recorder,
        policy: RetryPolicy,
        label: &str,
    ) -> RetryingGateway {
        RetryingGateway {
            gateway: gateway.clone(),
            sim: sim.clone(),
            policy,
            rng: Rc::new(RefCell::new(sim.rng(label))),
            recorder,
        }
    }

    /// Invoke `func` for `tenant` through the gateway until it
    /// succeeds, exhausts the policy, or runs out of deadline budget.
    pub async fn invoke(
        &self,
        tenant: u32,
        func: &str,
        payload: &Payload,
        deadline: Deadline,
    ) -> Result<InvokeOutcome, RetryError<GatewayError>> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last: Option<RetryError<GatewayError>> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let mut d = self.policy.delay(attempt - 1, &mut self.rng.borrow_mut());
                // A typed shed can name when capacity returns; retrying
                // earlier than that is guaranteed wasted work.
                if let Some(RetryError::Exhausted { last: e, .. }) = &last {
                    if let Some(at) = e.retry_after() {
                        d = d.max(at.duration_since(self.sim.now()));
                    }
                }
                if deadline.remaining(&self.sim) <= d {
                    return Err(RetryError::DeadlineExceeded { attempts: attempt });
                }
                self.sim.sleep(d).await;
            }
            if deadline.is_expired(&self.sim) {
                return Err(RetryError::DeadlineExceeded { attempts: attempt });
            }
            self.recorder.incr("resil.gateway.attempts");
            match self.gateway.invoke(tenant, func, payload.clone()).await {
                Ok(out) => match &out.result {
                    Ok(_) => return Ok(out),
                    Err(e) if e.is_transient() => {
                        last = Some(RetryError::Exhausted {
                            attempts: attempt + 1,
                            last: GatewayError::Function(e.clone()),
                        });
                    }
                    Err(e) => return Err(RetryError::Fatal(GatewayError::Function(e.clone()))),
                },
                Err(e) if e.is_transient() => {
                    last = Some(RetryError::Exhausted {
                        attempts: attempt + 1,
                        last: e,
                    });
                }
                Err(e) => return Err(RetryError::Fatal(e)),
            }
        }
        Err(last.expect("max_attempts >= 1 guarantees one attempt"))
    }

    /// The wrapped gateway, for probes and non-retried calls.
    pub fn inner(&self) -> &Gateway {
        &self.gateway
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::{GatewayConfig, TenantConfig};
    use faasim::{Cloud, CloudProfile};
    use faasim_faas::FunctionSpec;
    use faasim_simcore::SimDuration;

    #[test]
    fn backs_off_past_the_token_refill_and_succeeds() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 21);
        cloud.faas.register(FunctionSpec::new(
            "work",
            256,
            SimDuration::from_secs(30),
            |ctx, _payload| async move {
                ctx.cpu(SimDuration::from_millis(5)).await;
                Ok(Payload::inline("ok"))
            },
        ));
        // A refill slow enough (20 s/token) that no amount of cold-start
        // latency on the first call can hide the shed of the second.
        let mut cfg = GatewayConfig::new(vec![TenantConfig {
            rate: 0.05,
            burst: 1.0,
            ..TenantConfig::default()
        }]);
        cfg.overhead = SimDuration::ZERO;
        let gw = Gateway::new(
            &cloud.sim,
            &cloud.faas,
            cloud.ledger.clone(),
            cloud.recorder.clone(),
            &cloud.prices,
            cfg,
        );
        let client = RetryingGateway::new(
            &cloud.sim,
            &gw,
            cloud.recorder.clone(),
            RetryPolicy::default(),
            "gw.retry.test",
        );
        let payload = Payload::inline("x");
        cloud.sim.block_on(async move {
            // Burst of 1: the first call drains the bucket, the second
            // must be shed and then retried no earlier than the refill.
            client.invoke(0, "work", &payload, Deadline::unbounded()).await.expect("first");
            client.invoke(0, "work", &payload, Deadline::unbounded()).await.expect("second");
        });
        let st = gw.tenant_stats(0);
        assert_eq!(st.admitted, 2);
        assert!(st.bucket_shed >= 1, "the second call was shed at least once");
        assert!(st.conserved());
        // At 0.05 tokens/s a full refill takes 20 s: the retry that
        // succeeded cannot have fired before then.
        assert!(cloud.sim.now() >= faasim_simcore::SimTime::from_nanos(20_000_000_000));
        assert!(cloud.recorder.counter("resil.gateway.attempts") >= 3);
    }

    #[test]
    fn exhaustion_reports_the_last_shed() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 22);
        cloud.faas.register(FunctionSpec::new(
            "work",
            256,
            SimDuration::from_secs(30),
            |_ctx, _payload| async move { Ok(Payload::inline("ok")) },
        ));
        // Zero rate, burst 1: after the first admission the tenant is
        // rate limited forever.
        let mut cfg = GatewayConfig::new(vec![TenantConfig {
            rate: 0.0,
            burst: 1.0,
            ..TenantConfig::default()
        }]);
        cfg.overhead = SimDuration::ZERO;
        let gw = Gateway::new(
            &cloud.sim,
            &cloud.faas,
            cloud.ledger.clone(),
            cloud.recorder.clone(),
            &cloud.prices,
            cfg,
        );
        let client = RetryingGateway::new(
            &cloud.sim,
            &gw,
            cloud.recorder.clone(),
            RetryPolicy { max_attempts: 3, ..RetryPolicy::default() },
            "gw.retry.test",
        );
        let payload = Payload::inline("x");
        let sim = cloud.sim.clone();
        let got = cloud.sim.block_on(async move {
            client.invoke(0, "work", &payload, Deadline::unbounded()).await.expect("first");
            // retry_after is SimTime::MAX, so the deadline budget (not
            // the backoff spine) must end the loop.
            client
                .invoke(
                    0,
                    "work",
                    &payload,
                    Deadline::within(&sim, SimDuration::from_secs(60)),
                )
                .await
        });
        assert!(
            matches!(got, Err(ref e) if e.is_deadline()),
            "a never-refilling bucket must exhaust the deadline budget, got {got:?}"
        );
    }
}
