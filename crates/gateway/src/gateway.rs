//! The admission pipeline itself: token bucket → load shedder →
//! concurrency semaphore → circuit breaker, in that order, with every
//! decision deterministic in simulation time.
//!
//! Stage order matters twice over. The breaker runs *last* so that a
//! shed at an earlier stage can never strand its half-open probe slot
//! (the probe is only claimed once admission is otherwise certain).
//! And every stage after the bucket refunds the token it took, so the
//! bucket meters traffic that actually reaches the platform — overload
//! does not also burn down the tenant's paid-for rate.

use std::cell::{Cell, RefCell};
use std::convert::Infallible;
use std::fmt;
use std::rc::Rc;

use faasim_faas::{FaasPlatform, InvokeOutcome};
use faasim_payload::Payload;
use faasim_pricing::{ItemId, Ledger, PriceBook, Service};
use faasim_resilience::{BreakerConfig, BreakerError, BreakerState, CircuitBreaker};
use faasim_simcore::{LazyCounter, Recorder, SemPermit, Semaphore, Sim, SimDuration, SimTime};

use crate::bucket::TokenBucket;
use crate::stats::{GatewayStats, TenantStats};

/// Number of shed-priority tiers (priorities clamp to `TIERS - 1`).
pub const TIERS: usize = 4;

/// Per-tenant admission limits.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantConfig {
    /// Token refill rate, requests per second.
    pub rate: f64,
    /// Token bucket capacity (burst size), in requests.
    pub burst: f64,
    /// Maximum concurrently admitted requests for this tenant.
    pub max_concurrent: usize,
    /// Shed priority: tier 0 is shed first, tier `TIERS - 1` last.
    pub priority: u8,
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            rate: 100.0,
            burst: 200.0,
            max_concurrent: 256,
            priority: TIERS as u8 - 1,
        }
    }
}

/// Gateway-wide tuning.
#[derive(Clone, Debug, PartialEq)]
pub struct GatewayConfig {
    /// One entry per tenant; tenant ids are indices into this vec.
    pub tenants: Vec<TenantConfig>,
    /// Hard cap on concurrently admitted requests across all tenants.
    pub max_in_flight: usize,
    /// Load-shed watermarks per priority tier, as fractions of
    /// `max_in_flight`: a tier-`p` request is shed once the gateway's
    /// in-flight count reaches `watermark[p] * max_in_flight`. Must be
    /// non-decreasing so higher tiers never shed before lower ones.
    pub shed_watermarks: [f64; TIERS],
    /// Per-tenant circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// Constant gateway processing overhead added to every *admitted*
    /// request (no randomness: the gateway must not perturb RNG
    /// streams).
    pub overhead: SimDuration,
}

impl GatewayConfig {
    /// Defaults around the given tenant set: 4096 in flight, watermarks
    /// at 50/70/85/97%, stock breaker, 1 ms of gateway overhead.
    pub fn new(tenants: Vec<TenantConfig>) -> GatewayConfig {
        GatewayConfig {
            tenants,
            max_in_flight: 4096,
            shed_watermarks: [0.50, 0.70, 0.85, 0.97],
            breaker: BreakerConfig::default(),
            overhead: SimDuration::from_millis(1),
        }
    }
}

/// Typed admission refusals — the errors a retrying client backs off
/// on. Execution errors of *admitted* requests are not here: they stay
/// in [`InvokeOutcome::result`], except when a retry wrapper reports a
/// final attempt via [`GatewayError::Function`].
#[derive(Clone, Debug, PartialEq)]
pub enum GatewayError {
    /// The tenant's token bucket is empty; a token arrives at `retry_at`.
    RateLimited {
        /// The refusing tenant.
        tenant: u32,
        /// When the bucket next holds a whole token.
        retry_at: SimTime,
    },
    /// The tenant's concurrency cap is fully in use.
    ConcurrencyLimited {
        /// The refusing tenant.
        tenant: u32,
    },
    /// The load shedder refused this tenant's priority tier.
    Overloaded {
        /// The refusing tenant.
        tenant: u32,
        /// Gateway-wide in-flight count at the decision.
        in_flight: usize,
    },
    /// The tenant's circuit breaker is open (its functions are failing).
    BreakerOpen {
        /// The refusing tenant.
        tenant: u32,
        /// When half-open probing becomes possible.
        retry_at: SimTime,
    },
    /// An admitted invocation failed; produced only by retry wrappers
    /// reporting the final attempt's platform error.
    Function(faasim_faas::FnError),
}

impl GatewayError {
    /// Whether backing off and retrying can help. Every admission
    /// refusal is transient by construction; function errors defer to
    /// [`faasim_faas::FnError::is_transient`].
    pub fn is_transient(&self) -> bool {
        match self {
            GatewayError::Function(e) => e.is_transient(),
            _ => true,
        }
    }

    /// Whether this is a gateway shed (as opposed to a function error).
    pub fn is_shed(&self) -> bool {
        !matches!(self, GatewayError::Function(_))
    }

    /// The earliest instant a retry could possibly succeed, when the
    /// refusing stage knows it.
    pub fn retry_after(&self) -> Option<SimTime> {
        match self {
            GatewayError::RateLimited { retry_at, .. }
            | GatewayError::BreakerOpen { retry_at, .. } => Some(*retry_at),
            _ => None,
        }
    }
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::RateLimited { tenant, retry_at } => {
                write!(f, "tenant {tenant} rate limited; token at {retry_at}")
            }
            GatewayError::ConcurrencyLimited { tenant } => {
                write!(f, "tenant {tenant} at its concurrency cap")
            }
            GatewayError::Overloaded { tenant, in_flight } => {
                write!(f, "gateway overloaded ({in_flight} in flight); shed tenant {tenant}")
            }
            GatewayError::BreakerOpen { tenant, retry_at } => {
                write!(f, "tenant {tenant} breaker open; probing at {retry_at}")
            }
            GatewayError::Function(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GatewayError {}

struct TenantRt {
    cfg: TenantConfig,
    bucket: RefCell<TokenBucket>,
    sem: Semaphore,
    breaker: CircuitBreaker,
    stats: RefCell<TenantStats>,
    in_flight: Cell<u64>,
}

/// Pre-resolved handles for the admission hot path: every `try_admit`
/// at trace scale otherwise pays string hashing per counter and a map
/// walk plus `String` allocation per bill. Recorder counters resolve
/// lazily (see [`LazyCounter`] — eager interning would leak zero lines
/// into determinism digests); the ledger id is eager, safe because
/// never-charged slots stay off the bill.
struct GwHot {
    offered: LazyCounter,
    admitted: LazyCounter,
    shed_rate: LazyCounter,
    shed_load: LazyCounter,
    shed_breaker: LazyCounter,
    bill_requests: ItemId,
}

struct GatewayInner {
    sim: Sim,
    faas: FaasPlatform,
    ledger: Ledger,
    recorder: Recorder,
    tenants: Vec<TenantRt>,
    max_in_flight: usize,
    shed_at: [usize; TIERS],
    overhead: SimDuration,
    price_per_request: f64,
    hot: GwHot,
    in_flight: Cell<usize>,
    peak_in_flight: Cell<usize>,
}

impl GatewayInner {
    fn tenant(&self, tenant: u32) -> &TenantRt {
        self.tenants
            .get(tenant as usize)
            .unwrap_or_else(|| panic!("unknown tenant {tenant}: only {} configured", self.tenants.len()))
    }
}

/// The front door. Cheap to clone; clones share state, so one gateway
/// guards the whole platform.
#[derive(Clone)]
pub struct Gateway {
    inner: Rc<GatewayInner>,
}

impl Gateway {
    /// Put a gateway in front of `faas`. Gateway requests are billed to
    /// `ledger` at the price book's per-request gateway rate.
    ///
    /// # Panics
    /// Panics on an empty tenant set or watermarks that are not
    /// non-decreasing within `[0, 1]`.
    pub fn new(
        sim: &Sim,
        faas: &FaasPlatform,
        ledger: Ledger,
        recorder: Recorder,
        prices: &PriceBook,
        config: GatewayConfig,
    ) -> Gateway {
        assert!(!config.tenants.is_empty(), "gateway needs at least one tenant");
        assert!(config.max_in_flight >= 1, "max_in_flight must admit something");
        let mut shed_at = [0usize; TIERS];
        let mut prev = 0.0f64;
        for (tier, (&w, slot)) in config.shed_watermarks.iter().zip(&mut shed_at).enumerate() {
            assert!(
                (0.0..=1.0).contains(&w) && w >= prev,
                "watermarks must be non-decreasing in [0, 1]; tier {tier} is {w}"
            );
            prev = w;
            *slot = ((w * config.max_in_flight as f64) as usize).min(config.max_in_flight);
        }
        let now = sim.now();
        let tenants = config
            .tenants
            .into_iter()
            .map(|cfg| TenantRt {
                bucket: RefCell::new(TokenBucket::new(cfg.rate, cfg.burst, now)),
                sem: Semaphore::new(cfg.max_concurrent),
                // One shared counter name: per-tenant detail lives in
                // the recorder-free TenantStats, not the registry.
                breaker: CircuitBreaker::new(sim, recorder.clone(), "gateway.tenant", config.breaker.clone()),
                stats: RefCell::new(TenantStats::default()),
                in_flight: Cell::new(0),
                cfg,
            })
            .collect();
        let hot = GwHot {
            offered: LazyCounter::new("gw.offered"),
            admitted: LazyCounter::new("gw.admitted"),
            shed_rate: LazyCounter::new("gw.shed.rate"),
            shed_load: LazyCounter::new("gw.shed.load"),
            shed_breaker: LazyCounter::new("gw.shed.breaker"),
            bill_requests: ledger.item_id(Service::Gateway, "requests"),
        };
        Gateway {
            inner: Rc::new(GatewayInner {
                sim: sim.clone(),
                faas: faas.clone(),
                ledger,
                recorder,
                tenants,
                max_in_flight: config.max_in_flight,
                shed_at,
                overhead: config.overhead,
                price_per_request: prices.gateway_per_request,
                hot,
                in_flight: Cell::new(0),
                peak_in_flight: Cell::new(0),
            }),
        }
    }

    /// Run the admission pipeline for one request from `tenant`. On
    /// success the returned [`Admission`] holds the tenant's
    /// concurrency slot until completed (or dropped, which counts as
    /// success). Every call is billed, admitted or not.
    pub fn try_admit(&self, tenant: u32) -> Result<Admission, GatewayError> {
        let inner = &*self.inner;
        let t = inner.tenant(tenant);
        let now = inner.sim.now();
        t.stats.borrow_mut().offered += 1;
        inner.hot.offered.incr(&inner.recorder);
        inner
            .ledger
            .charge_id(inner.hot.bill_requests, 1.0, inner.price_per_request);

        // 1. Token bucket: rate + burst.
        if let Err(retry_at) = t.bucket.borrow_mut().try_take(now) {
            t.stats.borrow_mut().bucket_shed += 1;
            inner.hot.shed_rate.incr(&inner.recorder);
            return Err(GatewayError::RateLimited { tenant, retry_at });
        }

        // 2. Load shedder: platform-wide pressure, lowest tier first.
        let in_flight = inner.in_flight.get();
        let tier = (t.cfg.priority as usize).min(TIERS - 1);
        if in_flight >= inner.shed_at[tier] || in_flight >= inner.max_in_flight {
            t.bucket.borrow_mut().put_back();
            t.stats.borrow_mut().load_shed += 1;
            inner.hot.shed_load.incr(&inner.recorder);
            return Err(GatewayError::Overloaded { tenant, in_flight });
        }

        // 3. Per-tenant concurrency cap.
        let Some(permit) = t.sem.try_acquire(1) else {
            t.bucket.borrow_mut().put_back();
            t.stats.borrow_mut().concurrency_shed += 1;
            inner.hot.shed_rate.incr(&inner.recorder);
            return Err(GatewayError::ConcurrencyLimited { tenant });
        };

        // 4. Circuit breaker, last: its half-open probe slot is only
        //    claimed once nothing downstream can shed the request.
        if let Err(e) = t.breaker.try_admit::<Infallible>() {
            let retry_at = match e {
                BreakerError::Open { retry_at } => retry_at,
                BreakerError::Inner(never) => match never {},
            };
            drop(permit);
            t.bucket.borrow_mut().put_back();
            t.stats.borrow_mut().breaker_rejected += 1;
            inner.hot.shed_breaker.incr(&inner.recorder);
            return Err(GatewayError::BreakerOpen { tenant, retry_at });
        }

        inner.hot.admitted.incr(&inner.recorder);
        let in_flight = t.in_flight.get() + 1;
        t.in_flight.set(in_flight);
        {
            let mut st = t.stats.borrow_mut();
            st.admitted += 1;
            st.in_flight = in_flight;
            st.peak_in_flight = st.peak_in_flight.max(in_flight);
        }
        inner.in_flight.set(inner.in_flight.get() + 1);
        inner
            .peak_in_flight
            .set(inner.peak_in_flight.get().max(inner.in_flight.get()));

        Ok(Admission {
            inner: Rc::clone(&self.inner),
            tenant,
            _permit: permit,
            completed: false,
        })
    }

    /// Invoke `func` for `tenant` through the full admission pipeline.
    /// Admission refusals come back as typed [`GatewayError`]s;
    /// execution results (including platform errors of admitted calls)
    /// come back in the [`InvokeOutcome`], exactly as from
    /// [`FaasPlatform::invoke`]. Transient platform failures (crashes,
    /// timeouts) feed the tenant's breaker.
    pub async fn invoke(
        &self,
        tenant: u32,
        func: &str,
        payload: impl Into<Payload>,
    ) -> Result<InvokeOutcome, GatewayError> {
        let admission = self.try_admit(tenant)?;
        let inner = Rc::clone(&self.inner);
        if !inner.overhead.is_zero() {
            inner.sim.sleep(inner.overhead).await;
        }
        let out = inner.faas.invoke(func, payload).await;
        let breaker_failure = matches!(&out.result, Err(e) if e.is_transient());
        admission.complete(!breaker_failure);
        Ok(out)
    }

    /// Number of configured tenants.
    pub fn tenants(&self) -> u32 {
        self.inner.tenants.len() as u32
    }

    /// Currently admitted requests across all tenants.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.get()
    }

    /// One tenant's counters (recorder-free).
    pub fn tenant_stats(&self, tenant: u32) -> TenantStats {
        let t = self.inner.tenant(tenant);
        let mut st = *t.stats.borrow();
        st.in_flight = t.in_flight.get();
        st
    }

    /// The gateway-wide aggregate, folded like `NicStats`.
    pub fn stats(&self) -> GatewayStats {
        let mut totals = TenantStats::default();
        for tenant in 0..self.tenants() {
            totals.merge(&self.tenant_stats(tenant));
        }
        GatewayStats {
            tenants: self.tenants(),
            totals,
            peak_in_flight: self.inner.peak_in_flight.get() as u64,
        }
    }

    /// A tenant's current bucket level (test/diagnostic probe).
    pub fn bucket_level(&self, tenant: u32) -> f64 {
        let inner = &*self.inner;
        inner.tenant(tenant).bucket.borrow_mut().level(inner.sim.now())
    }

    /// A tenant's bucket capacity.
    pub fn bucket_burst(&self, tenant: u32) -> f64 {
        self.inner.tenant(tenant).bucket.borrow().burst()
    }

    /// A tenant's breaker state.
    pub fn breaker_state(&self, tenant: u32) -> BreakerState {
        self.inner.tenant(tenant).breaker.state()
    }
}

/// A granted admission slot. Call [`Admission::complete`] with the
/// outcome so the tenant's breaker sees it; dropping without completing
/// releases the slot and counts as success (an abandoned call proves
/// nothing about the tenant's functions).
pub struct Admission {
    inner: Rc<GatewayInner>,
    tenant: u32,
    _permit: SemPermit,
    completed: bool,
}

impl Admission {
    /// The tenant holding this slot.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Release the slot, feeding `ok` to the tenant's breaker.
    pub fn complete(mut self, ok: bool) {
        self.finish(ok);
    }

    fn finish(&mut self, ok: bool) {
        if self.completed {
            return;
        }
        self.completed = true;
        let t = self.inner.tenant(self.tenant);
        t.in_flight.set(t.in_flight.get() - 1);
        self.inner.in_flight.set(self.inner.in_flight.get() - 1);
        {
            let mut st = t.stats.borrow_mut();
            st.in_flight = t.in_flight.get();
            if ok {
                st.succeeded += 1;
            } else {
                st.failed += 1;
            }
        }
        t.breaker.observe(ok);
    }
}

impl Drop for Admission {
    fn drop(&mut self) {
        self.finish(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasim::{Cloud, CloudProfile};
    use faasim_faas::FunctionSpec;
    use faasim_simcore::join_all;

    fn cloud(seed: u64) -> Cloud {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
        cloud.faas.register(FunctionSpec::new(
            "work",
            256,
            SimDuration::from_secs(30),
            |ctx, _payload| async move {
                ctx.cpu(SimDuration::from_millis(20)).await;
                Ok(Payload::inline("ok"))
            },
        ));
        cloud
    }

    fn gateway(cloud: &Cloud, tenants: Vec<TenantConfig>) -> Gateway {
        let mut cfg = GatewayConfig::new(tenants);
        cfg.overhead = SimDuration::ZERO;
        Gateway::new(
            &cloud.sim,
            &cloud.faas,
            cloud.ledger.clone(),
            cloud.recorder.clone(),
            &cloud.prices,
            cfg,
        )
    }

    #[test]
    fn burst_admits_then_rate_limits_and_bills_everything() {
        let cloud = cloud(7);
        let gw = gateway(
            &cloud,
            vec![TenantConfig {
                rate: 10.0,
                burst: 5.0,
                ..TenantConfig::default()
            }],
        );
        let gw2 = gw.clone();
        cloud.sim.block_on(async move {
            // All 20 arrive at the same instant: only the burst passes.
            let mut admitted = Vec::new();
            let mut rate_limited = 0;
            for _ in 0..20 {
                match gw2.try_admit(0) {
                    Ok(a) => admitted.push(a),
                    Err(GatewayError::RateLimited { retry_at, .. }) => {
                        assert!(retry_at > SimTime::ZERO);
                        rate_limited += 1;
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            assert_eq!(admitted.len(), 5, "exactly the burst is admitted");
            assert_eq!(rate_limited, 15);
            for a in admitted {
                a.complete(true);
            }
        });
        let st = gw.tenant_stats(0);
        assert!(st.conserved(), "{st:?}");
        assert_eq!(st.offered, 20);
        assert_eq!(st.bucket_shed, 15);
        // Shed traffic still bills: 20 requests at the gateway rate.
        assert_eq!(cloud.ledger.item_quantity(Service::Gateway, "requests"), 20.0);
        assert_eq!(gw.in_flight(), 0, "everything drained");
    }

    #[test]
    fn load_shedder_drops_low_priority_first() {
        let cloud = cloud(8);
        let low = TenantConfig {
            rate: 1e6,
            burst: 1e6,
            max_concurrent: 1000,
            priority: 0,
        };
        let high = TenantConfig {
            priority: 3,
            ..low.clone()
        };
        let mut cfg = GatewayConfig::new(vec![low, high]);
        cfg.max_in_flight = 100;
        cfg.overhead = SimDuration::ZERO;
        let gw = Gateway::new(
            &cloud.sim,
            &cloud.faas,
            cloud.ledger.clone(),
            cloud.recorder.clone(),
            &cloud.prices,
            cfg,
        );
        let gw2 = gw.clone();
        cloud.sim.block_on(async move {
            // Fill the gateway to between the tier-0 (50%) and tier-3
            // (97%) watermarks with held admissions.
            let held: Vec<Admission> =
                (0..60).map(|_| gw2.try_admit(1).expect("fill")).collect();
            assert!(matches!(
                gw2.try_admit(0),
                Err(GatewayError::Overloaded { .. })
            ));
            let ok = gw2.try_admit(1).expect("high priority still admitted");
            drop(ok);
            drop(held);
        });
        assert_eq!(gw.tenant_stats(0).load_shed, 1);
        assert_eq!(gw.tenant_stats(1).load_shed, 0);
        assert!(gw.tenant_stats(0).conserved());
        assert!(gw.tenant_stats(1).conserved());
        assert_eq!(gw.stats().peak_in_flight, 61);
    }

    #[test]
    fn concurrency_cap_sheds_and_releases() {
        let cloud = cloud(9);
        let gw = gateway(
            &cloud,
            vec![TenantConfig {
                rate: 1e6,
                burst: 1e6,
                max_concurrent: 3,
                priority: 3,
            }],
        );
        cloud.sim.block_on({
            let gw = gw.clone();
            async move {
                let held: Vec<Admission> =
                    (0..3).map(|_| gw.try_admit(0).expect("cap")).collect();
                assert!(matches!(
                    gw.try_admit(0),
                    Err(GatewayError::ConcurrencyLimited { .. })
                ));
                drop(held);
                let again = gw.try_admit(0).expect("slot released");
                again.complete(true);
            }
        });
        let st = gw.tenant_stats(0);
        assert_eq!(st.concurrency_shed, 1);
        assert_eq!(st.peak_in_flight, 3);
        assert!(st.conserved());
    }

    #[test]
    fn crashing_tenant_trips_its_breaker_but_not_its_neighbor() {
        let cloud = cloud(10);
        // A function that always outlives its timeout: every call is a
        // transient TimedOut, which counts as a breaker failure.
        cloud.faas.register(FunctionSpec::new(
            "hang",
            256,
            SimDuration::from_millis(5),
            |ctx, _payload| async move {
                ctx.cpu(SimDuration::from_secs(10)).await;
                Ok(Payload::inline("never"))
            },
        ));
        let t = TenantConfig {
            rate: 1e6,
            burst: 1e6,
            max_concurrent: 1000,
            priority: 3,
        };
        let gw = gateway(&cloud, vec![t.clone(), t]);
        let gw2 = gw.clone();
        cloud.sim.block_on(async move {
            // Default breaker trips after 5 consecutive failures.
            for _ in 0..5 {
                let out = gw2.invoke(0, "hang", Payload::inline("x")).await.expect("admitted");
                assert!(out.result.is_err());
            }
            assert_eq!(gw2.breaker_state(0), BreakerState::Open);
            assert!(matches!(
                gw2.invoke(0, "hang", Payload::inline("x")).await,
                Err(GatewayError::BreakerOpen { .. })
            ));
            // The neighbor is unaffected.
            let out = gw2.invoke(1, "work", Payload::inline("x")).await.expect("neighbor");
            assert!(out.result.is_ok());
            assert_eq!(gw2.breaker_state(1), BreakerState::Closed);
        });
        let st = gw.tenant_stats(0);
        assert_eq!(st.breaker_rejected, 1);
        assert_eq!(st.failed, 5);
        assert!(st.conserved());
        assert!(gw.tenant_stats(1).conserved());
    }

    #[test]
    fn shed_stages_refund_the_bucket_token() {
        let cloud = cloud(11);
        let gw = gateway(
            &cloud,
            vec![TenantConfig {
                rate: 0.0,
                burst: 4.0,
                max_concurrent: 1,
                priority: 3,
            }],
        );
        cloud.sim.block_on({
            let gw = gw.clone();
            async move {
                let held = gw.try_admit(0).expect("first");
                // Concurrency-shed twice: both tokens must come back.
                for _ in 0..2 {
                    assert!(matches!(
                        gw.try_admit(0),
                        Err(GatewayError::ConcurrencyLimited { .. })
                    ));
                }
                assert_eq!(gw.bucket_level(0), 3.0, "refunded (one held in flight)");
                drop(held);
            }
        });
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed: u64| -> (String, Vec<TenantStats>) {
            let cloud = cloud(seed);
            let gw = gateway(
                &cloud,
                vec![
                    TenantConfig { rate: 20.0, burst: 10.0, ..TenantConfig::default() },
                    TenantConfig { rate: 5.0, burst: 3.0, ..TenantConfig::default() },
                ],
            );
            let gw2 = gw.clone();
            let sim = cloud.sim.clone();
            cloud.sim.block_on(async move {
                let calls: Vec<_> = (0..40u32)
                    .map(|i| {
                        let gw = gw2.clone();
                        let sim = sim.clone();
                        async move {
                            sim.sleep(SimDuration::from_millis(25 * u64::from(i % 7))).await;
                            let _ = gw.invoke(i % 2, "work", Payload::inline("x")).await;
                        }
                    })
                    .collect();
                join_all(calls).await;
            });
            let stats = (0..2).map(|t| gw.tenant_stats(t)).collect();
            (cloud.recorder.digest(), stats)
        };
        let (d1, s1) = run(42);
        let (d2, s2) = run(42);
        assert_eq!(d1, d2, "gateway decisions must be byte-identical");
        assert_eq!(s1, s2);
    }
}
