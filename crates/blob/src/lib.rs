//! # faasim-blob
//!
//! An S3-like autoscaling object store: flat buckets of immutable objects,
//! high per-request latency, per-connection throughput caps, optional
//! read-after-write *inconsistency* (the weak replica consistency §3 of
//! the paper calls out), per-request pricing, and change notifications
//! that the FaaS platform uses for blob-triggered functions.
//!
//! Calibration (see `BlobProfile::aws_2018`):
//! - 53 ms mean per operation → Table 1's 108 ms Lambda↔S3 write+read.
//! - 41.04 MB/s per connection → §3.1's 100 MB training batch in 2.49 s
//!   end-to-end (53 ms request + 2.437 s streaming).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use faasim_net::Host;
use faasim_payload::Payload;
use faasim_pricing::{Ledger, PriceBook, Service};
use faasim_simcore::{
    mbytes_per_sec, Bps, LatencyModel, Recorder, Sender, Sim, SimDuration, SimRng, SimTime,
};

/// Errors returned by blob operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlobError {
    /// The bucket does not exist.
    NoSuchBucket(String),
    /// The key does not exist (or is not yet visible to this reader).
    NoSuchKey(String),
    /// The service is momentarily unavailable (S3 503 SlowDown; transient,
    /// retryable). Only produced when chaos injection is enabled via
    /// [`BlobStore::set_faults`].
    Unavailable,
}

impl BlobError {
    /// Whether a retry of the same request may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, BlobError::Unavailable)
    }
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::NoSuchBucket(b) => write!(f, "no such bucket: {b}"),
            BlobError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            BlobError::Unavailable => write!(f, "service unavailable (503 SlowDown)"),
        }
    }
}

impl std::error::Error for BlobError {}

/// Performance/consistency profile of the store.
#[derive(Clone, Debug)]
pub struct BlobProfile {
    /// Per-operation request latency (control-plane + first byte).
    pub op_latency: LatencyModel,
    /// Per-connection data throughput, bits/second.
    pub per_conn_bandwidth: Bps,
    /// When `Some`, a newly written object only becomes visible to readers
    /// after this lag (S3's 2018-era eventual consistency for overwrite
    /// and list operations). `None` = read-after-write everywhere.
    pub eventual_read_lag: Option<LatencyModel>,
}

impl BlobProfile {
    /// Calibrated to the paper's Table 1 and §3.1 case studies.
    pub fn aws_2018() -> BlobProfile {
        BlobProfile {
            op_latency: LatencyModel::LogNormal {
                mean: SimDuration::from_micros(53_000),
                cv: 0.15,
                floor: SimDuration::from_millis(10),
            },
            per_conn_bandwidth: mbytes_per_sec(41.04),
            eventual_read_lag: None,
        }
    }

    /// Same means, zero variance — for exact table reproduction.
    pub fn exact(mut self) -> BlobProfile {
        self.op_latency = self.op_latency.to_constant();
        self.eventual_read_lag = self.eventual_read_lag.map(|m| m.to_constant());
        self
    }
}

/// What happened to an object (for bucket notifications).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlobEventKind {
    /// Object created or overwritten.
    Created,
    /// Object deleted.
    Removed,
}

/// A bucket change notification.
#[derive(Clone, Debug)]
pub struct BlobEvent {
    /// Bucket name.
    pub bucket: String,
    /// Object key.
    pub key: String,
    /// Object size in bytes (0 for removals).
    pub size: u64,
    /// Created or removed.
    pub kind: BlobEventKind,
    /// When the change committed.
    pub at: SimTime,
}

#[derive(Clone)]
struct ObjectVersion {
    data: Payload,
    visible_at: SimTime,
    tombstone: bool,
}

#[derive(Default)]
struct Bucket {
    objects: BTreeMap<String, Vec<ObjectVersion>>,
    subscribers: Vec<Sender<BlobEvent>>,
}

/// Deterministic fault knobs for the object store. Zero by default; no
/// RNG draws are consumed while every probability is zero, so enabling
/// chaos never perturbs a fault-free run at the same seed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BlobFaults {
    /// Probability that a request fails with [`BlobError::Unavailable`]
    /// after paying its request latency (but before moving any data).
    pub unavailable_prob: f64,
}

struct StoreState {
    buckets: BTreeMap<String, Bucket>,
    rng: SimRng,
    faults: BlobFaults,
}

/// The object store service handle. Cheap to clone.
#[derive(Clone)]
pub struct BlobStore {
    sim: Sim,
    profile: Rc<BlobProfile>,
    prices: Rc<PriceBook>,
    ledger: Ledger,
    recorder: Recorder,
    state: Rc<RefCell<StoreState>>,
}

impl BlobStore {
    /// Create the service.
    pub fn new(
        sim: &Sim,
        profile: BlobProfile,
        prices: Rc<PriceBook>,
        ledger: Ledger,
        recorder: Recorder,
    ) -> BlobStore {
        BlobStore {
            sim: sim.clone(),
            profile: Rc::new(profile),
            prices,
            ledger,
            recorder,
            state: Rc::new(RefCell::new(StoreState {
                buckets: BTreeMap::new(),
                rng: sim.rng("blob.store"),
                faults: BlobFaults::default(),
            })),
        }
    }

    /// Create a bucket (idempotent).
    pub fn create_bucket(&self, name: &str) {
        self.state
            .borrow_mut()
            .buckets
            .entry(name.to_owned())
            .or_default();
    }

    /// Subscribe to change events on `bucket`. The receiver sees every
    /// commit after this call.
    pub fn subscribe(&self, bucket: &str) -> faasim_simcore::Receiver<BlobEvent> {
        let (tx, rx) = faasim_simcore::channel();
        self.state
            .borrow_mut()
            .buckets
            .entry(bucket.to_owned())
            .or_default()
            .subscribers
            .push(tx);
        rx
    }

    /// Install chaos knobs; pass `BlobFaults::default()` to disable.
    pub fn set_faults(&self, faults: BlobFaults) {
        self.state.borrow_mut().faults = faults;
    }

    fn sample_latency(&self) -> SimDuration {
        let mut st = self.state.borrow_mut();
        self.profile.op_latency.sample(&mut st.rng)
    }

    /// Chaos gate at the head of every operation: an unavailable request
    /// pays its request latency before the 503 reaches the caller, and is
    /// not billed (S3 does not charge for 5xx responses).
    async fn chaos_gate(&self, op: &str) -> Result<(), BlobError> {
        let unavailable = {
            let mut st = self.state.borrow_mut();
            let p = st.faults.unavailable_prob;
            p > 0.0 && st.rng.chance(p)
        };
        if unavailable {
            let latency = self.sample_latency();
            self.sim.sleep(latency).await;
            self.recorder.incr("blob.unavailable");
            self.recorder.record_duration(op, latency);
            return Err(BlobError::Unavailable);
        }
        Ok(())
    }

    fn sample_visibility(&self, now: SimTime) -> SimTime {
        match &self.profile.eventual_read_lag {
            None => now,
            Some(model) => {
                let mut st = self.state.borrow_mut();
                now + model.sample(&mut st.rng)
            }
        }
    }

    /// Store an object. The returned future completes when the last byte
    /// is acknowledged; the data has then committed, though under an
    /// eventual-consistency profile readers may briefly still see the old
    /// version.
    pub async fn put(
        &self,
        caller: &Host,
        bucket: &str,
        key: &str,
        data: impl Into<Payload>,
    ) -> Result<(), BlobError> {
        let data = data.into();
        self.chaos_gate("blob.put.latency").await?;
        let t0 = self.sim.now();
        let latency = self.sample_latency();
        self.sim.sleep(latency).await;
        caller
            .nic_transfer_capped(data.len() as u64, self.profile.per_conn_bandwidth)
            .await;
        let now = self.sim.now();
        let visible_at = self.sample_visibility(now);
        let size = data.len() as u64;
        {
            let mut st = self.state.borrow_mut();
            let b = st
                .buckets
                .get_mut(bucket)
                .ok_or_else(|| BlobError::NoSuchBucket(bucket.to_owned()))?;
            let versions = b.objects.entry(key.to_owned()).or_default();
            // Keep the last already-visible version (for stale reads) plus
            // the new one.
            versions.retain(|v| v.visible_at <= now);
            if versions.len() > 1 {
                let last = versions.pop().expect("nonempty");
                versions.clear();
                versions.push(last);
            }
            versions.push(ObjectVersion {
                data,
                visible_at,
                tombstone: false,
            });
            let event = BlobEvent {
                bucket: bucket.to_owned(),
                key: key.to_owned(),
                size,
                kind: BlobEventKind::Created,
                at: now,
            };
            b.subscribers.retain(|s| s.send(event.clone()).is_ok());
        }
        self.ledger.charge(
            Service::Blob,
            "put-requests",
            1.0,
            self.prices.blob_put_per_request,
        );
        self.recorder.incr("blob.put");
        self.recorder.add("blob.bytes_in", size);
        self.recorder
            .record_duration("blob.put.latency", self.sim.now() - t0);
        Ok(())
    }

    /// Fetch an object. Completes after the full body has streamed through
    /// the caller's NIC at the per-connection cap.
    pub async fn get(&self, caller: &Host, bucket: &str, key: &str) -> Result<Payload, BlobError> {
        self.chaos_gate("blob.get.latency").await?;
        let t0 = self.sim.now();
        let latency = self.sample_latency();
        self.sim.sleep(latency).await;
        let data = self.read_visible(bucket, key)?;
        caller
            .nic_transfer_capped(data.len() as u64, self.profile.per_conn_bandwidth)
            .await;
        self.ledger.charge(
            Service::Blob,
            "get-requests",
            1.0,
            self.prices.blob_get_per_request,
        );
        self.recorder.incr("blob.get");
        self.recorder.add("blob.bytes_out", data.len() as u64);
        self.recorder
            .record_duration("blob.get.latency", self.sim.now() - t0);
        Ok(data)
    }

    /// Fetch a byte range of an object (an HTTP `Range` GET). The range
    /// is clamped to the object's length; only the sliced bytes move
    /// through the caller's NIC, so transfer time and metered bytes are
    /// proportional to the range, not the object. Billed as a GET
    /// request like any other read. This is what lets partition-parallel
    /// scanners fetch their slices independently instead of dragging
    /// whole objects.
    pub async fn get_range(
        &self,
        caller: &Host,
        bucket: &str,
        key: &str,
        range: std::ops::Range<u64>,
    ) -> Result<Payload, BlobError> {
        self.chaos_gate("blob.get_range.latency").await?;
        let t0 = self.sim.now();
        let latency = self.sample_latency();
        self.sim.sleep(latency).await;
        let data = self.read_visible(bucket, key)?;
        let len = data.len() as u64;
        let (start, end) = (range.start.min(len), range.end.min(len));
        let slice = if start >= end {
            Payload::new()
        } else {
            data.slice(start as usize..end as usize)
        };
        caller
            .nic_transfer_capped(slice.len() as u64, self.profile.per_conn_bandwidth)
            .await;
        self.ledger.charge(
            Service::Blob,
            "get-requests",
            1.0,
            self.prices.blob_get_per_request,
        );
        self.recorder.incr("blob.get_range");
        self.recorder.add("blob.bytes_out", slice.len() as u64);
        self.recorder
            .record_duration("blob.get_range.latency", self.sim.now() - t0);
        Ok(slice)
    }

    fn read_visible(&self, bucket: &str, key: &str) -> Result<Payload, BlobError> {
        let now = self.sim.now();
        let st = self.state.borrow();
        let b = st
            .buckets
            .get(bucket)
            .ok_or_else(|| BlobError::NoSuchBucket(bucket.to_owned()))?;
        let versions = b
            .objects
            .get(key)
            .ok_or_else(|| BlobError::NoSuchKey(key.to_owned()))?;
        let visible = versions
            .iter()
            .rev()
            .find(|v| v.visible_at <= now)
            .ok_or_else(|| BlobError::NoSuchKey(key.to_owned()))?;
        if visible.tombstone {
            return Err(BlobError::NoSuchKey(key.to_owned()));
        }
        Ok(visible.data.clone())
    }

    /// Delete an object (idempotent; deleting a missing key is not an
    /// error, matching S3).
    pub async fn delete(&self, _caller: &Host, bucket: &str, key: &str) -> Result<(), BlobError> {
        self.chaos_gate("blob.delete.latency").await?;
        let latency = self.sample_latency();
        self.sim.sleep(latency).await;
        let now = self.sim.now();
        let visible_at = self.sample_visibility(now);
        {
            let mut st = self.state.borrow_mut();
            let b = st
                .buckets
                .get_mut(bucket)
                .ok_or_else(|| BlobError::NoSuchBucket(bucket.to_owned()))?;
            if let Some(versions) = b.objects.get_mut(key) {
                versions.push(ObjectVersion {
                    data: Payload::new(),
                    visible_at,
                    tombstone: true,
                });
            }
            let event = BlobEvent {
                bucket: bucket.to_owned(),
                key: key.to_owned(),
                size: 0,
                kind: BlobEventKind::Removed,
                at: now,
            };
            b.subscribers.retain(|s| s.send(event.clone()).is_ok());
        }
        self.ledger.charge(
            Service::Blob,
            "put-requests", // S3 bills DELETE under the PUT tier
            1.0,
            self.prices.blob_put_per_request,
        );
        self.recorder.incr("blob.delete");
        Ok(())
    }

    /// List visible keys with the given prefix.
    pub async fn list(
        &self,
        caller: &Host,
        bucket: &str,
        prefix: &str,
    ) -> Result<Vec<String>, BlobError> {
        let objects = self.list_objects(caller, bucket, prefix).await?;
        Ok(objects.into_iter().map(|(k, _)| k).collect())
    }

    /// List visible `(key, size)` pairs with the given prefix — what an
    /// S3 LIST response actually carries. Sizes let a scanner plan byte
    /// partitions without issuing a request per object. Billed exactly
    /// like [`BlobStore::list`].
    pub async fn list_objects(
        &self,
        _caller: &Host,
        bucket: &str,
        prefix: &str,
    ) -> Result<Vec<(String, u64)>, BlobError> {
        self.chaos_gate("blob.list.latency").await?;
        let latency = self.sample_latency();
        self.sim.sleep(latency).await;
        let now = self.sim.now();
        let st = self.state.borrow();
        let b = st
            .buckets
            .get(bucket)
            .ok_or_else(|| BlobError::NoSuchBucket(bucket.to_owned()))?;
        let keys = b
            .objects
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter_map(|(k, versions)| {
                versions
                    .iter()
                    .rev()
                    .find(|v| v.visible_at <= now)
                    .filter(|v| !v.tombstone)
                    .map(|v| (k.clone(), v.data.len() as u64))
            })
            .collect();
        drop(st);
        self.ledger.charge(
            Service::Blob,
            "put-requests", // LIST bills at the PUT tier
            1.0,
            self.prices.blob_put_per_request,
        );
        self.recorder.incr("blob.list");
        Ok(keys)
    }

    /// The store's per-connection throughput cap, bits/second. Scanners
    /// use this to size their ranged-read pipelines (how many concurrent
    /// range GETs it takes to saturate one worker's scan throughput).
    pub fn per_conn_bandwidth(&self) -> faasim_simcore::Bps {
        self.profile.per_conn_bandwidth
    }

    /// Total bytes of all *latest visible* objects (for storage accounting).
    pub fn stored_bytes(&self) -> u64 {
        let now = self.sim.now();
        let st = self.state.borrow();
        st.buckets
            .values()
            .flat_map(|b| b.objects.values())
            .filter_map(|versions| versions.iter().rev().find(|v| v.visible_at <= now))
            .filter(|v| !v.tombstone)
            .map(|v| v.data.len() as u64)
            .sum()
    }

    /// Number of visible objects across all buckets.
    pub fn object_count(&self) -> usize {
        let now = self.sim.now();
        let st = self.state.borrow();
        st.buckets
            .values()
            .flat_map(|b| b.objects.values())
            .filter(|versions| {
                versions
                    .iter()
                    .rev()
                    .find(|v| v.visible_at <= now)
                    .map(|v| !v.tombstone)
                    .unwrap_or(false)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use faasim_net::{Fabric, NetProfile, NicConfig};
    use faasim_simcore::{mbps, Sim};

    fn setup(profile: BlobProfile) -> (Sim, BlobStore, Host, Ledger) {
        let sim = Sim::new(7);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let host = fabric.add_host(0, NicConfig::simple(mbps(10_000.0)));
        let ledger = Ledger::new();
        let store = BlobStore::new(
            &sim,
            profile,
            Rc::new(PriceBook::aws_2018()),
            ledger.clone(),
            recorder,
        );
        store.create_bucket("b");
        (sim, store, host, ledger)
    }

    #[test]
    fn put_get_roundtrip() {
        let (sim, store, host, _) = setup(BlobProfile::aws_2018().exact());
        let got = sim.block_on(async move {
            store
                .put(&host, "b", "k", Bytes::from_static(b"hello"))
                .await
                .unwrap();
            store.get(&host, "b", "k").await.unwrap()
        });
        assert!(got.eq_bytes(b"hello"));
    }

    #[test]
    fn one_kb_write_read_matches_table1() {
        // Table 1: Lambda/EC2 I/O to S3, 1KB write+read ≈ 106–108 ms.
        let (sim, store, host, _) = setup(BlobProfile::aws_2018().exact());
        sim.block_on(async move {
            let data = Bytes::from(vec![0u8; 1024]);
            store.put(&host, "b", "k", data).await.unwrap();
            store.get(&host, "b", "k").await.unwrap();
        });
        let ms = sim.now().as_secs_f64() * 1e3;
        assert!((ms - 106.0).abs() < 3.0, "write+read took {ms} ms");
    }

    #[test]
    fn hundred_mb_fetch_takes_about_2_5s() {
        // §3.1 CS-1: a 100 MB batch from S3 took 2.49 s on Lambda.
        let (sim, store, host, _) = setup(BlobProfile::aws_2018().exact());
        let took = sim.block_on({
            let store = store.clone();
            async move {
                // 100 MB in O(1) memory: the symbolic data plane times the
                // transfer off `len()` alone.
                let data = Payload::zeros(100_000_000);
                store.put(&host, "b", "batch", data).await.unwrap();
                let t0 = store.sim.now();
                store.get(&host, "b", "batch").await.unwrap();
                store.sim.now() - t0
            }
        });
        let s = took.as_secs_f64();
        assert!((s - 2.49).abs() < 0.02, "fetch took {s} s");
    }

    #[test]
    fn missing_key_and_bucket_error() {
        let (sim, store, host, _) = setup(BlobProfile::aws_2018().exact());
        sim.block_on(async move {
            assert!(matches!(
                store.get(&host, "nope", "k").await,
                Err(BlobError::NoSuchBucket(_))
            ));
            assert!(matches!(
                store.get(&host, "b", "missing").await,
                Err(BlobError::NoSuchKey(_))
            ));
        });
    }

    #[test]
    fn delete_hides_object() {
        let (sim, store, host, _) = setup(BlobProfile::aws_2018().exact());
        sim.block_on(async move {
            store
                .put(&host, "b", "k", Bytes::from_static(b"x"))
                .await
                .unwrap();
            store.delete(&host, "b", "k").await.unwrap();
            assert!(matches!(
                store.get(&host, "b", "k").await,
                Err(BlobError::NoSuchKey(_))
            ));
            // Idempotent: deleting again is fine.
            store.delete(&host, "b", "k").await.unwrap();
            assert_eq!(store.object_count(), 0);
        });
    }

    #[test]
    fn list_filters_by_prefix() {
        let (sim, store, host, _) = setup(BlobProfile::aws_2018().exact());
        let keys = sim.block_on(async move {
            for k in ["logs/1", "logs/2", "data/1"] {
                store
                    .put(&host, "b", k, Bytes::from_static(b"v"))
                    .await
                    .unwrap();
            }
            store.list(&host, "b", "logs/").await.unwrap()
        });
        assert_eq!(keys, vec!["logs/1".to_owned(), "logs/2".to_owned()]);
    }

    #[test]
    fn get_range_slices_and_clamps() {
        let (sim, store, host, ledger) = setup(BlobProfile::aws_2018().exact());
        sim.block_on({
            let store = store.clone();
            async move {
                store
                    .put(&host, "b", "k", Bytes::from_static(b"hello world"))
                    .await
                    .unwrap();
                let mid = store.get_range(&host, "b", "k", 6..11).await.unwrap();
                assert!(mid.eq_bytes(b"world"));
                // Past-the-end ranges clamp, S3-style.
                let tail = store.get_range(&host, "b", "k", 6..999).await.unwrap();
                assert!(tail.eq_bytes(b"world"));
                let empty = store.get_range(&host, "b", "k", 20..30).await.unwrap();
                assert!(empty.is_empty());
                assert!(matches!(
                    store.get_range(&host, "b", "missing", 0..1).await,
                    Err(BlobError::NoSuchKey(_))
                ));
            }
        });
        // Every range read bills one GET request.
        assert_eq!(ledger.item_quantity(Service::Blob, "get-requests"), 3.0);
    }

    #[test]
    fn get_range_transfer_time_is_proportional() {
        // Half the object moves half the bytes: the 100 MB body from the
        // §3.1 case study takes ~2.49 s whole, so ~1.27 s for 50 MB
        // (53 ms request latency + 50 MB at 41.04 MB/s).
        let (sim, store, host, _) = setup(BlobProfile::aws_2018().exact());
        let took = sim.block_on({
            let store = store.clone();
            async move {
                store
                    .put(&host, "b", "big", Payload::zeros(100_000_000))
                    .await
                    .unwrap();
                let t0 = store.sim.now();
                let half = store
                    .get_range(&host, "b", "big", 0..50_000_000)
                    .await
                    .unwrap();
                assert_eq!(half.len(), 50_000_000);
                store.sim.now() - t0
            }
        });
        let s = took.as_secs_f64();
        assert!((s - 1.27).abs() < 0.02, "half fetch took {s} s");
    }

    #[test]
    fn list_objects_reports_sizes() {
        let (sim, store, host, _) = setup(BlobProfile::aws_2018().exact());
        let listed = sim.block_on(async move {
            store
                .put(&host, "b", "logs/1", Bytes::from_static(b"abc"))
                .await
                .unwrap();
            store
                .put(&host, "b", "logs/2", Bytes::from_static(b"defgh"))
                .await
                .unwrap();
            store
                .put(&host, "b", "data/1", Bytes::from_static(b"x"))
                .await
                .unwrap();
            store.list_objects(&host, "b", "logs/").await.unwrap()
        });
        assert_eq!(
            listed,
            vec![("logs/1".to_owned(), 3), ("logs/2".to_owned(), 5)]
        );
    }

    #[test]
    fn eventual_consistency_serves_stale_reads() {
        let mut profile = BlobProfile::aws_2018().exact();
        profile.eventual_read_lag = Some(LatencyModel::Constant(SimDuration::from_secs(5)));
        let (sim, store, host, _) = setup(profile);
        sim.block_on({
            let store = store.clone();
            async move {
                store
                    .put(&host, "b", "k", Bytes::from_static(b"v1"))
                    .await
                    .unwrap();
                // Wait out the first version's visibility lag.
                store.sim.sleep(SimDuration::from_secs(6)).await;
                store
                    .put(&host, "b", "k", Bytes::from_static(b"v2"))
                    .await
                    .unwrap();
                // Immediately after the overwrite: still see v1.
                let stale = store.get(&host, "b", "k").await.unwrap();
                assert!(stale.eq_bytes(b"v1"));
                // After the lag: v2.
                store.sim.sleep(SimDuration::from_secs(6)).await;
                let fresh = store.get(&host, "b", "k").await.unwrap();
                assert!(fresh.eq_bytes(b"v2"));
            }
        });
    }

    #[test]
    fn events_reach_subscribers() {
        let (sim, store, host, _) = setup(BlobProfile::aws_2018().exact());
        let mut rx = store.subscribe("b");
        let store2 = store.clone();
        sim.spawn(async move {
            store2
                .put(&host, "b", "new-object", Bytes::from_static(b"data"))
                .await
                .unwrap();
        });
        let ev = sim.block_on(async move { rx.recv().await.unwrap() });
        assert_eq!(ev.key, "new-object");
        assert_eq!(ev.kind, BlobEventKind::Created);
        assert_eq!(ev.size, 4);
    }

    #[test]
    fn requests_are_billed() {
        let (sim, store, host, ledger) = setup(BlobProfile::aws_2018().exact());
        sim.block_on(async move {
            store
                .put(&host, "b", "k", Bytes::from_static(b"x"))
                .await
                .unwrap();
            store.get(&host, "b", "k").await.unwrap();
            store.get(&host, "b", "k").await.unwrap();
        });
        assert_eq!(ledger.item_quantity(Service::Blob, "put-requests"), 1.0);
        assert_eq!(ledger.item_quantity(Service::Blob, "get-requests"), 2.0);
        let expect = 0.005 / 1e3 + 2.0 * 0.0004 / 1e3;
        assert!((ledger.total() - expect).abs() < 1e-12);
    }

    #[test]
    fn stored_bytes_tracks_latest_versions() {
        let (sim, store, host, _) = setup(BlobProfile::aws_2018().exact());
        sim.block_on(async move {
            store
                .put(&host, "b", "k", Bytes::from(vec![0u8; 100]))
                .await
                .unwrap();
            store
                .put(&host, "b", "k", Bytes::from(vec![0u8; 50]))
                .await
                .unwrap();
            assert_eq!(store.stored_bytes(), 50);
            assert_eq!(store.object_count(), 1);
        });
    }
}
